"""Virtual-world grid discretization.

Pre-rendering systems (Furion, Coterie) discretize the continuous virtual
world into a finite lattice of *grid points* so the server only has to
pre-render panoramic frames from those points (§2.2 of the paper).  This
module provides :class:`WorldGrid`, which maps between continuous world
coordinates and grid points, enumerates neighbourhoods for the prefetcher,
and tracks which grid points a player can actually reach (Racing Mountain's
1090x1096 m world has only 7.7 M reachable points because players stay on
the track).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from .vec import Vec2

GridPoint = Tuple[int, int]


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle in virtual-world ground coordinates."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(f"degenerate rectangle: {self}")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Vec2:
        return Vec2((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def contains(self, point: Vec2) -> bool:
        """Half-open containment so adjacent quadrants never both claim a point."""
        return self.x_min <= point.x < self.x_max and self.y_min <= point.y < self.y_max

    def contains_closed(self, point: Vec2) -> bool:
        """Closed-boundary containment (max edges included)."""
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def clamp(self, point: Vec2) -> Vec2:
        """Nearest point inside the rectangle."""
        return Vec2(
            min(max(point.x, self.x_min), self.x_max),
            min(max(point.y, self.y_min), self.y_max),
        )

    def quadrants(self) -> Tuple["Rect", "Rect", "Rect", "Rect"]:
        """Split into 4 equal sub-rectangles (SW, SE, NW, NE order)."""
        cx, cy = self.center.x, self.center.y
        return (
            Rect(self.x_min, self.y_min, cx, cy),
            Rect(cx, self.y_min, self.x_max, cy),
            Rect(self.x_min, cy, cx, self.y_max),
            Rect(cx, cy, self.x_max, self.y_max),
        )

    def sample(self, rng, count: int) -> List[Vec2]:
        """Draw ``count`` uniform random points from the rectangle."""
        xs = rng.uniform(self.x_min, self.x_max, size=count)
        ys = rng.uniform(self.y_min, self.y_max, size=count)
        return [Vec2(float(x), float(y)) for x, y in zip(xs, ys)]


class WorldGrid:
    """A uniform lattice over a rectangular virtual world.

    Parameters
    ----------
    bounds:
        The world rectangle in metres.
    pitch:
        Grid spacing in metres.  The paper's worlds have up to ~32 grid
        points per metre (Viking Village: 24.9 M points over 187x130 m).
    reachable:
        Optional predicate ``Vec2 -> bool`` restricting which grid points a
        player can occupy (e.g. a race track mask).  ``None`` means the whole
        world is reachable.
    """

    def __init__(
        self,
        bounds: Rect,
        pitch: float,
        reachable: Optional[Callable[[Vec2], bool]] = None,
    ) -> None:
        if pitch <= 0:
            raise ValueError(f"grid pitch must be positive, got {pitch}")
        self.bounds = bounds
        self.pitch = pitch
        self._reachable = reachable
        self.nx = max(1, int(math.floor(bounds.width / pitch)) + 1)
        self.ny = max(1, int(math.floor(bounds.height / pitch)) + 1)

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------

    def snap(self, point: Vec2) -> GridPoint:
        """The grid point nearest to a continuous world position."""
        clamped = self.bounds.clamp(point)
        i = int(round((clamped.x - self.bounds.x_min) / self.pitch))
        j = int(round((clamped.y - self.bounds.y_min) / self.pitch))
        return (min(i, self.nx - 1), min(j, self.ny - 1))

    def to_world(self, gp: GridPoint) -> Vec2:
        """World position of a grid point."""
        i, j = gp
        if not self.in_range(gp):
            raise IndexError(f"grid point {gp} outside {self.nx}x{self.ny} grid")
        return Vec2(self.bounds.x_min + i * self.pitch, self.bounds.y_min + j * self.pitch)

    def in_range(self, gp: GridPoint) -> bool:
        """Whether indices fall inside the lattice."""
        i, j = gp
        return 0 <= i < self.nx and 0 <= j < self.ny

    def is_reachable(self, gp: GridPoint) -> bool:
        """Whether a player can occupy this grid point."""
        if not self.in_range(gp):
            return False
        if self._reachable is None:
            return True
        return self._reachable(self.to_world(gp))

    # ------------------------------------------------------------------
    # Counting and enumeration
    # ------------------------------------------------------------------

    @property
    def total_points(self) -> int:
        return self.nx * self.ny

    def count_reachable(self, rng, sample_size: int = 4096) -> int:
        """Estimate the reachable grid-point count by uniform sampling.

        Exhaustive enumeration is infeasible for paper-scale grids (268 M
        points for CTS), so this mirrors how we report "grid points" in
        Table 3: ``total_points`` scaled by a sampled reachable fraction.
        """
        if self._reachable is None:
            return self.total_points
        hits = sum(
            1 for p in self.bounds.sample(rng, sample_size) if self._reachable(p)
        )
        return int(round(self.total_points * hits / sample_size))

    def iter_points(self) -> Iterator[GridPoint]:
        """Enumerate every grid point; only sensible for small test grids."""
        for j in range(self.ny):
            for i in range(self.nx):
                yield (i, j)

    # ------------------------------------------------------------------
    # Neighbourhoods (used by the prefetcher, Fig. 10)
    # ------------------------------------------------------------------

    def neighbors(self, gp: GridPoint, hops: int = 1) -> List[GridPoint]:
        """Reachable grid points within ``hops`` Chebyshev steps (excl. self)."""
        i, j = gp
        result = []
        for dj in range(-hops, hops + 1):
            for di in range(-hops, hops + 1):
                if di == 0 and dj == 0:
                    continue
                cand = (i + di, j + dj)
                if self.is_reachable(cand):
                    result.append(cand)
        return result

    def points_within(self, center: Vec2, radius: float) -> List[GridPoint]:
        """Reachable grid points within Euclidean ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        lo = self.snap(Vec2(center.x - radius, center.y - radius))
        hi = self.snap(Vec2(center.x + radius, center.y + radius))
        result = []
        for j in range(lo[1], hi[1] + 1):
            for i in range(lo[0], hi[0] + 1):
                gp = (i, j)
                if not self.is_reachable(gp):
                    continue
                if self.to_world(gp).distance_to(center) <= radius:
                    result.append(gp)
        return result

    def grid_distance(self, a: GridPoint, b: GridPoint) -> float:
        """Euclidean world-space distance between two grid points."""
        return self.to_world(a).distance_to(self.to_world(b))
