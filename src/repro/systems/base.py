"""Shared scaffolding for the end-to-end system simulations.

Each system (Mobile, Thin-client, Multi-Furion, Coterie) simulates N phones
sharing one 802.11ac link for a fixed game-play duration, producing the
per-player metrics of Tables 1/7/8 and the aggregate network/resource
numbers of Table 9 and Fig. 12.

The per-frame loop is a discrete-event process per player: modeled task
latencies (render, decode, sync) combine with *actual* simulated network
transfers through Eq. 2, then vsync-quantize into the display interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

import dataclasses

from ..adapt import AbrConfig, AbrController
from ..codec import CodecTiming, FrameCodec
from ..faults import ChurnSchedule, FaultInjector, FaultSchedule
from ..geometry import Vec2
from ..metrics import (
    CpuModel,
    FrameRecord,
    MetricsCollector,
    PowerModel,
    SessionMetrics,
    ThermalModel,
)
from ..net import ImpairmentConfig, LinkImpairment, PunChannel, WifiLink
from ..predict import PredictConfig
from ..render import KERNEL_MODES, PIXEL2, DeviceProfile, RenderConfig, RenderCostModel
from ..session import MembershipSummary, SessionSupervisor, SupervisorConfig, SyncConfig
from ..sim import Simulator
from ..telemetry import LATENCY_BUCKETS_MS, as_hub, as_tracer
from ..trace import Trajectory, generate_party
from ..world.games import GameWorld

SENSOR_SCANOUT_MS = 0.5  # pose sampling + display scanout overhead

# Minimum process yield: a client whose pipeline is slower than its
# transfer must still cede the simulator, or it could re-enter its loop
# at the exact same timestamp forever (busy-spin hazard).
MIN_YIELD_MS = 1e-3


@dataclass
class SessionConfig:
    """Knobs shared by every system run."""

    duration_s: float = 20.0
    seed: int = 0
    device: DeviceProfile = PIXEL2
    render_config: RenderConfig = field(default_factory=RenderConfig)
    codec_crf: float = 25.0
    wifi_mbps: float = 500.0
    wifi_overhead_ms: float = 1.5
    render_frames: bool = False  # True: full-fidelity frames (slow)
    cache_capacity_bytes: int = 512 * 1024 * 1024
    cache_policy: str = "lru"
    # Frame-pipeline kernel mode (repro.render.KERNEL_MODES).  None keeps
    # whatever ``render_config.kernels`` says; a string overrides it for
    # the whole run (CLI ``--kernels``).  All modes are bit-identical.
    kernels: Optional[str] = None
    # --- robustness (all default-off: clean runs are bit-identical) ---
    impairment: Optional[ImpairmentConfig] = None  # link loss/jitter/dips
    faults: Optional[FaultSchedule] = None  # scripted failure windows
    # --- adaptation (None: fixed CRF, no estimator, clean path) ---
    adapt: Optional[AbrConfig] = None  # closed-loop ABR knobs
    prefetch_deadline_ms: Optional[float] = None  # None: frame budget - merge
    fetch_timeout_ms: float = 250.0  # first background-retry timeout
    fetch_max_retries: int = 5  # background re-issues before giving up
    fetch_backoff_cap_ms: float = 2000.0  # retry timeout ceiling
    # --- session membership (None: fixed roster, no supervisor) ---
    churn: Optional[ChurnSchedule] = None  # scripted join/leave/crash
    supervision: Optional[SupervisorConfig] = None  # detector/admission knobs
    max_players: Optional[int] = None  # roster cap (overrides supervision's)
    # --- speculation (None: no prediction, clean path bit-identical) ---
    predict: Optional[PredictConfig] = None  # pose-prediction prefetch knobs
    # --- sync validation (None: no digest exchange, clean path) ---
    sync: Optional[SyncConfig] = None  # cross-peer desync detection knobs
    # --- observability (None: tracing off, zero overhead) ---
    # A repro.telemetry.SpanTracer recording sim-time spans for the whole
    # online path.  Purely observational: a traced run produces the same
    # metrics as an untraced one (asserted by bench_trace_overhead).
    tracer: Optional[object] = None
    # A repro.telemetry.MetricsHub sampling counters/gauges/histograms on
    # a sim-time cadence across the engine, link, caches, frame loops,
    # ABR, and supervisor.  Same contract as the tracer: observational
    # only, bit-identical results (asserted by bench_metrics_overhead).
    metrics: Optional[object] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.wifi_mbps <= 0:
            raise ValueError("wifi_mbps must be positive")
        if self.prefetch_deadline_ms is not None and self.prefetch_deadline_ms <= 0:
            raise ValueError("prefetch_deadline_ms must be positive")
        if self.fetch_timeout_ms <= 0 or self.fetch_backoff_cap_ms <= 0:
            raise ValueError("fetch timeouts must be positive")
        if self.fetch_max_retries < 0:
            raise ValueError("fetch_max_retries must be non-negative")
        if self.max_players is not None and self.max_players < 1:
            raise ValueError("max_players must be >= 1")
        if self.kernels is not None:
            if self.kernels not in KERNEL_MODES:
                raise ValueError(
                    f"kernels must be one of {KERNEL_MODES}, got {self.kernels!r}"
                )
            if self.kernels != self.render_config.kernels:
                self.render_config = dataclasses.replace(
                    self.render_config, kernels=self.kernels
                )

    @property
    def supervised(self) -> bool:
        """Whether a session supervisor runs (any churn config, even an
        empty schedule, turns supervision on; None keeps the fixed-roster
        clean path bit-identical)."""
        return self.churn is not None

    def supervisor_config(self) -> SupervisorConfig:
        """The effective supervision knobs for this run."""
        base = self.supervision or SupervisorConfig()
        if self.max_players is not None:
            base = dataclasses.replace(base, max_players=self.max_players)
        return base

    @property
    def degraded_mode(self) -> bool:
        """Whether any robustness machinery is active for this run.

        False for the default config: the clean fast path is untouched,
        keeping pre-robustness runs bit-identical.
        """
        return (
            self.impairment is not None
            or self.faults is not None
            or self.prefetch_deadline_ms is not None
            or self.adapt is not None
        )


@dataclass
class PlayerResult:
    """One player's aggregated session outcome."""

    player_id: int
    metrics: SessionMetrics
    fetches: int
    power_w: float
    temperature_c: float
    # SSIM across each far-BE source switch (full-fidelity Coterie runs
    # only); feeds the §7.4 user-study model.
    switch_ssims: List[float] = field(default_factory=list)
    # Raw per-frame records, for timeline analyses (recovery curves).
    records: List[FrameRecord] = field(default_factory=list)

    def recovery_ms(self, after_ms: float, target_fps: float = 55.0,
                    window: int = 30) -> Optional[float]:
        """Time from ``after_ms`` until FPS is steady again (see collector)."""
        collector = MetricsCollector()
        collector.records = self.records
        return collector.recovery_ms(after_ms, target_fps, window)


@dataclass
class RunResult:
    """A complete multi-player run of one system on one game."""

    system: str
    game: str
    n_players: int
    duration_s: float
    players: List[PlayerResult]
    be_mbps: float  # aggregate BE traffic over the air
    fi_kbps: float  # aggregate FI sync traffic
    link_utilization: float
    # Membership outcome when a session supervisor ran (None otherwise).
    membership: Optional[MembershipSummary] = None

    @property
    def mean_fps(self) -> float:
        return float(np.mean([p.metrics.fps for p in self.players]))

    @property
    def mean_inter_frame_ms(self) -> float:
        return float(np.mean([p.metrics.inter_frame_ms for p in self.players]))

    @property
    def mean_responsiveness_ms(self) -> float:
        return float(np.mean([p.metrics.responsiveness_ms for p in self.players]))

    @property
    def mean_cache_hit_ratio(self) -> Optional[float]:
        ratios = [
            p.metrics.cache_hit_ratio
            for p in self.players
            if p.metrics.cache_hit_ratio is not None
        ]
        if not ratios:
            return None
        return float(np.mean(ratios))

    def per_player_be_mbps(self) -> float:
        """Average BE traffic attributable to one player."""
        return self.be_mbps / self.n_players


class _PlayerMeter:
    """Cached per-player instrument handles for the frame-loop hot path.

    Built lazily on a player's first metered frame so late joiners and
    never-admitted slots cost nothing; holding the handles here keeps
    :meth:`Session.meter_frame` free of registry lookups.
    """

    __slots__ = (
        "interval_hist", "render_hist", "net_hist", "responsiveness_hist",
        "margin_gauge", "delivery_gauge", "crf_gauge", "degraded_gauge",
        "abr_drops", "abr_steps",
    )

    def __init__(self, hub, player_id: int) -> None:
        labels = {"player": str(player_id)}
        self.interval_hist = hub.histogram(
            "frame_interval_ms", labels, edges=LATENCY_BUCKETS_MS
        )
        self.render_hist = hub.histogram(
            "stage_render_ms", labels, edges=LATENCY_BUCKETS_MS
        )
        self.net_hist = hub.histogram(
            "stage_net_ms", labels, edges=LATENCY_BUCKETS_MS
        )
        self.responsiveness_hist = hub.histogram(
            "responsiveness_ms", labels, edges=LATENCY_BUCKETS_MS
        )
        self.margin_gauge = hub.gauge("deadline_margin_ms", labels)
        self.delivery_gauge = hub.gauge("delivery_rate_mbps", labels)
        self.crf_gauge = hub.gauge("abr_crf", labels)
        self.degraded_gauge = hub.gauge("abr_degraded", labels)
        self.abr_drops = hub.counter("abr_drops_total", labels)
        self.abr_steps = hub.counter("abr_steps_total", labels)


class Session:
    """Simulation context shared by one run's player processes."""

    def __init__(self, world: GameWorld, n_players: int, config: SessionConfig):
        if n_players < 1:
            raise ValueError("n_players must be >= 1")
        self.world = world
        self.n_players = n_players
        self.config = config
        self.tracer = as_tracer(config.tracer)
        self.hub = as_hub(config.metrics)
        self.sim = Simulator(tracer=self.tracer, metrics=self.hub)
        self.faults = FaultInjector(config.faults) if config.faults else None
        self.link = WifiLink(
            self.sim,
            capacity_mbps=config.wifi_mbps,
            overhead_ms=config.wifi_overhead_ms,
            stations=n_players,
            impairment=self._build_impairment(),
            tracer=self.tracer,
            metrics=self.hub,
        )
        self.pun = PunChannel(
            self.sim, self.link, n_players, seed=config.seed + 77
        )
        self.cost_model = RenderCostModel(config.device)
        self.codec = FrameCodec(crf=config.codec_crf)
        self.codec_timing = CodecTiming()
        # Late joiners occupy slots beyond the initial roster; with no
        # churn configured total_slots == n_players and every line below
        # is bit-identical to the fixed-roster code.
        extra_slots = (
            config.churn.new_player_count() if config.churn is not None else 0
        )
        self.total_slots = n_players + extra_slots
        if config.churn is not None:
            config.churn.validate_slots(self.total_slots)
        self.trajectories: List[Trajectory] = generate_party(
            world, self.total_slots, config.duration_s, seed=config.seed
        )
        self.collectors = [MetricsCollector() for _ in range(self.total_slots)]
        self.fi_ms = self.cost_model.fi_ms(world.spec.fi_triangles)
        self._kernel_renders_traced = 0  # trace_kernel_reuse watermark
        self.horizon_ms = config.duration_s * 1000.0
        # Per-slot ABR controllers; seated by the system loop (which knows
        # the nominal frame size) via init_abr.  None when adapt is off.
        self.abr: Optional[List[AbrController]] = None
        self.supervisor: Optional[SessionSupervisor] = None
        if config.supervised:
            self.supervisor = SessionSupervisor(
                self.sim,
                config.churn,
                n_initial=n_players,
                total_slots=self.total_slots,
                config=config.supervisor_config(),
                pun=self.pun,
                tracer=self.tracer,
                metrics=self.hub,
                horizon_ms=self.horizon_ms,
            )
        # Session-wide metering: unlabeled totals the SLO engine's ratio
        # objectives divide (per-player detail lives in _PlayerMeter).
        self._meters: dict = {}
        if self.hub.enabled:
            hub = self.hub
            self._frames_total = hub.counter("frames_total")
            self._misses_total = hub.counter("deadline_misses_total")
            self._drops_total = hub.counter("frames_dropped_total")
            self._stales_total = hub.counter("stale_frames_total")
            self._ssim_gauge = hub.gauge("displayed_ssim")
            pun = self.pun
            pun_gauge = hub.gauge("pun_players")
            hub.register_probe(
                lambda: pun_gauge.set(float(pun.n_players))
            )

    def _build_impairment(self) -> Optional[LinkImpairment]:
        """Compose the configured impairment with fault-schedule windows.

        Returns None when nothing impairs the link, preserving the clean
        fast path exactly.
        """
        config = self.config
        dips = config.faults.dips() if config.faults else ()
        base = config.impairment
        if base is None and not dips:
            return None
        if base is None:
            base = ImpairmentConfig(seed=config.seed + 104729)
        if dips:
            base = dataclasses.replace(base, dips=base.dips + dips)
        return LinkImpairment(base)

    # ------------------------------------------------------------------
    # Fault queries (uniform across all system loops)
    # ------------------------------------------------------------------

    def server_stall_ms(self, now_ms: float) -> float:
        """Scripted extra server latency for a fetch issued now."""
        if self.faults is None:
            return 0.0
        return self.faults.server_stall_ms(now_ms)

    def outage_resume_ms(self, player_id: int, now_ms: float) -> Optional[float]:
        """End of the outage pausing ``player_id`` now, or None if online."""
        if self.faults is None:
            return None
        return self.faults.outage_resume_ms(player_id, now_ms)

    def speculation_frozen(self, player_id: int, now_ms: float) -> bool:
        """Whether a stale-speculation storm freezes this player's predictor."""
        if self.faults is None:
            return False
        return self.faults.speculation_frozen(player_id, now_ms)

    def speculation_corrupted(self, player_id: int, now_ms: float) -> bool:
        """Whether a speculative fetch completing now arrives corrupted."""
        if self.faults is None:
            return False
        return self.faults.speculation_corrupted(player_id, now_ms)

    def desync_event_ms(
        self, player_id: int, since_ms: float, until_ms: float
    ) -> Optional[float]:
        """Earliest scripted desync for ``player_id`` in ``(since, until]``."""
        if self.faults is None:
            return None
        return self.faults.desync_event_ms(player_id, since_ms, until_ms)

    def fault_label(self, now_ms: float) -> str:
        """Scheduled fault episodes active at ``now_ms`` (span attribution).

        ``"dip"``, ``"stall"``, ``"outage"`` joined with ``+`` when windows
        overlap; ``""`` when nothing scripted is active.  Ambient
        impairment (always-on loss/jitter) is not an episode and is not
        labelled.
        """
        schedule = self.config.faults
        if schedule is None:
            return ""
        parts = []
        if any(w.start_ms <= now_ms < w.end_ms for w in schedule.link):
            parts.append("dip")
        if any(s.start_ms <= now_ms < s.end_ms for s in schedule.stalls):
            parts.append("stall")
        if any(o.start_ms <= now_ms < o.end_ms for o in schedule.outages):
            parts.append("outage")
        if any(s.start_ms <= now_ms < s.end_ms for s in schedule.spec_storms):
            parts.append("specstorm")
        if any(
            w.start_ms <= now_ms < w.end_ms
            for w in schedule.spec_corruptions
        ):
            parts.append("speccorrupt")
        return "+".join(parts)

    # ------------------------------------------------------------------
    # Telemetry emitters (shared by every system loop; call only when
    # ``self.tracer.enabled`` — the callers guard, so the disabled path
    # never reaches these)
    # ------------------------------------------------------------------

    def trace_kernel_reuse(self, store, player_id: int, at_ms: float) -> None:
        """Emit a ``kernel.block_reuse`` instant for a fresh reuse-encode.

        Call after a panorama-store fetch: no-ops unless the fetch actually
        rendered and encoded a *new* panorama through the dirty-block coder
        (memo/disk hits and non-reuse kernel modes emit nothing), so the
        trace shows one instant per server-side encode with its block
        hit/miss split.
        """
        dirty = getattr(store, "reuse_dirty_map", None)
        if dirty is None or store.renders == self._kernel_renders_traced:
            return
        self._kernel_renders_traced = store.renders
        recomputed = int(dirty.sum())
        self.tracer.instant(
            "kernel.block_reuse", player_id, "render", at_ms, cat="kernel",
            args={
                "blocks": int(dirty.size),
                "recomputed": recomputed,
                "reused": int(dirty.size) - recomputed,
            },
        )

    def trace_pipeline_frame(
        self,
        player_id: int,
        frame: int,
        t0: float,
        timings,
        interval_ms: float,
        *,
        frame_bytes: int = 0,
        cache: Optional[str] = None,
        deadline_missed: bool = False,
        stale_age_ms: Optional[float] = None,
    ) -> None:
        """Emit one Eq. 2 pipeline frame: concurrent stages + merge + wait.

        The four concurrent tasks (render, decode, prefetch, sync) all
        start at the interval origin; merge follows their max; any
        remainder up to the display interval is the vsync wait.
        """
        tracer = self.tracer
        args = {
            "frame": frame,
            "interval_ms": round(interval_ms, 6),
            "fault": self.fault_label(t0),
        }
        if frame_bytes:
            args["bytes"] = frame_bytes
        if cache is not None:
            args["cache"] = cache
        if deadline_missed:
            args["deadline_missed"] = True
        if stale_age_ms is not None:
            args["stale_age_ms"] = round(stale_age_ms, 4)
        tracer.complete(
            "frame", player_id, "frame", t0, interval_ms, cat="frame",
            args=args,
        )
        stage_args = {"frame": frame}
        for lane, dur in (
            ("render", timings.render_ms),
            ("decode", timings.decode_ms),
            ("prefetch", timings.prefetch_ms),
            ("sync", timings.sync_ms),
        ):
            if dur > 0.0:
                tracer.complete(lane, player_id, lane, t0, dur, args=stage_args)
        split = timings.split_render_ms()
        if timings.merge_ms > 0.0:
            tracer.complete(
                "merge", player_id, "merge", t0 + split - timings.merge_ms,
                timings.merge_ms, args=stage_args,
            )
        wait = interval_ms - split
        if wait > 1e-9:
            tracer.complete(
                "wait", player_id, "wait", t0 + split, wait, args=stage_args
            )

    def trace_sequential_frame(
        self,
        player_id: int,
        frame: int,
        t0: float,
        stages,
        interval_ms: float,
        *,
        frame_bytes: int = 0,
    ) -> None:
        """Emit one sequential frame (thin client): stages laid end to end,
        any remainder up to the display interval as the vsync wait.

        ``stages`` is an ordered iterable of ``(lane, duration_ms)``.
        """
        tracer = self.tracer
        args = {
            "frame": frame,
            "interval_ms": round(interval_ms, 6),
            "fault": self.fault_label(t0),
        }
        if frame_bytes:
            args["bytes"] = frame_bytes
        tracer.complete(
            "frame", player_id, "frame", t0, interval_ms, cat="frame",
            args=args,
        )
        stage_args = {"frame": frame}
        cursor = t0
        for lane, dur in stages:
            if dur > 0.0:
                tracer.complete(lane, player_id, lane, cursor, dur,
                                args=stage_args)
                cursor += dur
        wait = t0 + interval_ms - cursor
        if wait > 1e-9:
            tracer.complete(
                "wait", player_id, "wait", cursor, wait, args=stage_args
            )

    def trace_outage(self, player_id: int, start_ms: float, end_ms: float) -> None:
        """Mark a scripted disconnect on the player's frame lane."""
        self.tracer.complete(
            "outage", player_id, "frame", start_ms, end_ms - start_ms,
            cat="fault", args={"fault": "outage"},
        )

    # ------------------------------------------------------------------
    # Metrics emitters (call only when ``self.hub.enabled`` — the system
    # loops guard, so the disabled path never reaches these)
    # ------------------------------------------------------------------

    def meter_frame(self, player_id: int, record: FrameRecord) -> None:
        """Meter one displayed frame into the hub and pump sampling.

        Stage latencies land in per-player histograms, outcomes bump the
        session-wide SLO counters, and the hub gets a sampling pass at
        the *current* sim time (``record.t_ms`` is the future display
        stamp; sampling off it would stamp boundaries not yet reached).
        """
        hub = self.hub
        meter = self._meters.get(player_id)
        if meter is None:
            meter = self._meters[player_id] = _PlayerMeter(hub, player_id)
        meter.interval_hist.observe(record.interval_ms)
        meter.render_hist.observe(record.render_ms)
        meter.responsiveness_hist.observe(record.responsiveness_ms)
        self._frames_total.inc()
        if record.deadline_missed:
            self._misses_total.inc()
        if record.dropped:
            self._drops_total.inc()
        if record.stale_age_ms is not None:
            self._stales_total.inc()
        if record.displayed_ssim is not None:
            self._ssim_gauge.set(record.displayed_ssim)
        if record.frame_bytes > 0:
            meter.net_hist.observe(record.net_delay_ms)
            meter.margin_gauge.set(
                self.prefetch_deadline_ms() - record.net_delay_ms
            )
            if record.net_delay_ms > 0:
                meter.delivery_gauge.set(
                    record.frame_bytes * 8.0 / 1000.0 / record.net_delay_ms
                )
        if self.abr is not None:
            controller = self.abr[player_id]
            meter.crf_gauge.set(controller.crf)
            meter.degraded_gauge.set(1.0 if controller.degraded else 0.0)
            meter.abr_drops.set_total(float(controller.drops))
            meter.abr_steps.set_total(
                float(controller.steps_down + controller.steps_up)
            )
        hub.maybe_sample(self.sim.now)

    def meter_cache(self, player_id: int, cache) -> None:
        """Register hit/miss/occupancy probes for a player's frame cache.

        Probe-based so the cache itself needs no metrics plumbing: the
        hub reads ``cache.stats`` at each sample boundary only.
        """
        hub = self.hub
        labels = {"player": str(player_id)}
        hits = hub.counter("cache_hits_total", labels)
        misses = hub.counter("cache_misses_total", labels)
        evictions = hub.counter("cache_evictions_total", labels)
        ratio = hub.gauge("cache_hit_ratio", labels)
        occupancy = hub.gauge("cache_occupancy_bytes", labels)
        entries = hub.gauge("cache_entries", labels)

        def probe() -> None:
            stats = cache.stats
            hits.set_total(float(stats.hits))
            misses.set_total(float(stats.misses))
            evictions.set_total(float(stats.evictions))
            if stats.lookups:
                ratio.set(stats.hit_ratio)
            occupancy.set(float(cache.used_bytes))
            entries.set(float(len(cache)))

        hub.register_probe(probe)

    def meter_store(self, store) -> None:
        """Register render/occupancy probes for the shared panorama store."""
        hub = self.hub
        renders = hub.counter("store_renders_total")
        memo = hub.gauge("store_memo_entries")

        def probe() -> None:
            renders.set_total(float(store.renders))
            memo.set(float(store.memo_entries))

        hub.register_probe(probe)

    def init_abr(self, nominal_bytes: float) -> Optional[List[AbrController]]:
        """Seat one ABR controller per slot (no-op when adapt is off).

        ``nominal_bytes`` anchors the ladder forecast: the typical wire
        size of this system's frames at base quality (Coterie: the far-BE
        size model mean; whole-BE systems: their size model mean).
        """
        if self.config.adapt is None:
            return None
        self.abr = [
            AbrController(
                self.config.adapt,
                player_id,
                base_crf=self.config.codec_crf,
                deadline_ms=self.prefetch_deadline_ms(),
                nominal_bytes=nominal_bytes,
                tracer=self.tracer,
            )
            for player_id in range(self.total_slots)
        ]
        return self.abr

    def prefetch_deadline_ms(self) -> float:
        """Per-frame prefetch deadline derived from the frame budget.

        Eq. 2 adds the merge stage after the concurrent tasks, so for the
        display to hold 60 FPS the prefetch must land within the frame
        budget minus the merge time.
        """
        if self.config.prefetch_deadline_ms is not None:
            return self.config.prefetch_deadline_ms
        return max(1.0, 1000.0 / 60.0 - self.config.device.merge_ms)

    def position_at(self, player: int, t_ms: float):
        """Time-indexed trajectory lookup (players move in real time even
        when the display runs below 60 FPS).

        Scripted pose jumps (teleports, snap-turns) apply as cumulative
        offsets from their instant onward — a permanent discontinuity the
        pose predictor cannot extrapolate across.  With no pose faults
        scheduled the original sample is returned untouched.
        """
        trajectory = self.trajectories[player]
        index = min(len(trajectory) - 1, max(0, int(t_ms / (1000.0 / 60.0))))
        sample = trajectory[index]
        if self.faults is not None and self.config.faults.poses:
            sample = self._apply_pose_faults(player, t_ms, sample)
        return sample

    def _apply_pose_faults(self, player: int, t_ms: float, sample):
        """Offset a trajectory sample by every pose jump in effect."""
        dx = dy = dheading = 0.0
        for jump in self.config.faults.poses:
            if jump.applies(player, t_ms):
                dx += jump.dx
                dy += jump.dy
                dheading += jump.dheading
        if dx == 0.0 and dy == 0.0 and dheading == 0.0:
            return sample
        position = self.world.scene.bounds.clamp(
            sample.position + Vec2(dx, dy)
        )
        return dataclasses.replace(
            sample, position=position, heading=sample.heading + dheading
        )

    def finish(
        self,
        system: str,
        cpu_per_player: List[float],
        switch_ssims: Optional[List[List[float]]] = None,
    ) -> RunResult:
        """Aggregate collected metrics once the simulation has drained."""
        horizon = self.horizon_ms
        be_mbps = self.link.bandwidth_mbps("be", horizon)
        fi_kbps = self.link.bandwidth_mbps("fi", horizon) * 1000.0
        power_model = PowerModel()
        players = []
        for player_id, collector in enumerate(self.collectors):
            if self.supervisor is not None and not collector.records:
                # A slot that never displayed a frame (join rejected, or
                # crashed mid-warm-up) has no QoE row to report.
                continue
            metrics = collector.summary(cpu_utilization=cpu_per_player[player_id])
            if self.abr is not None:
                controller = self.abr[player_id]
                metrics = dataclasses.replace(
                    metrics,
                    abr_steps_down=controller.steps_down,
                    abr_steps_up=controller.steps_up,
                    abr_drops=controller.drops,
                    abr_mean_crf=controller.mean_crf(horizon),
                    abr_degraded_ms=controller.degraded_ms(horizon),
                    abr_crf_timeline=tuple(controller.crf_timeline),
                )
            if self.supervisor is not None:
                stats = self.supervisor.stats[player_id]
                metrics = dataclasses.replace(
                    metrics,
                    join_latency_ms=stats.join_latency_ms,
                    warmup_ms=stats.warmup_ms,
                    epochs_survived=stats.epochs_survived,
                    evictions=stats.evictions,
                    incarnations=stats.incarnations,
                )
            net_share = be_mbps / self.n_players
            power = power_model.draw_w(
                metrics.cpu_utilization, metrics.gpu_utilization, net_share
            )
            thermal = ThermalModel()
            for _ in range(int(self.config.duration_s) + 1):
                thermal.step(power, dt_s=1.0)
            players.append(
                PlayerResult(
                    player_id=player_id,
                    metrics=metrics,
                    fetches=sum(1 for r in collector.records if r.frame_bytes > 0),
                    power_w=power,
                    temperature_c=thermal.temperature_c,
                    switch_ssims=(
                        switch_ssims[player_id] if switch_ssims else []
                    ),
                    records=list(collector.records),
                )
            )
        return RunResult(
            system=system,
            game=self.world.name,
            n_players=self.n_players,
            duration_s=self.config.duration_s,
            players=players,
            be_mbps=be_mbps,
            fi_kbps=fi_kbps,
            link_utilization=self.link.utilization(horizon),
            membership=(
                self.supervisor.summary() if self.supervisor is not None else None
            ),
        )
