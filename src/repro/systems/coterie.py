"""The Coterie system (§5): 3-layer rendering with far-BE frame caching.

Each client renders FI and near BE locally, decodes a prefetched panoramic
far-BE frame, and consults its frame cache before touching the network —
the cache absorbs ~80 % of prefetches (Table 6), which is what lets four
players share one 802.11ac link at a steady 60 FPS (Fig. 11).

Two fidelity modes:

* **emulated** (default) — frame *sizes* come from the calibrated size
  model and no pixels are rasterized; cache behaviour, latency, FPS,
  bandwidth, CPU/GPU are all exact (the cache outcome "is determined by
  the frame locations", §4.6).
* **full** (``config.render_frames``) — far-BE frames are really rendered,
  encoded, decoded, and merged with the locally rendered near BE and FI;
  displayed-frame SSIM against the all-local reference is sampled every
  ``ssim_stride`` frames, and far-BE switch SSIMs are recorded for the
  user-study model (Tables 7 and 10).

Graceful degradation (active only when the session config enables
impairment, faults, or an explicit prefetch deadline — the clean default
path is untouched):

* each prefetch races a **deadline** derived from the frame budget
  (Eq. 2: budget minus merge); a fetch that loses the race does not stall
  the display — the client shows the *nearest cached* far-BE panorama
  instead (frame similarity, §4.6, keeps a nearby stale frame
  perceptually close) and records the stale age;
* the late fetch continues in the **background** with a timeout and
  capped exponential-backoff retries (abandoned attempts are withdrawn
  from the medium), so one interference burst cannot pile up transfers;
* after a scripted disconnect the client **re-warms** its cache with a
  blocking fetch on reconnect before resuming its normal cadence.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from .. import perf
from ..core.cache import FrameCache
from ..core.constraint import BandwidthBudget, satisfies_constraint
from ..core.online import SsimBatchQueue
from ..core.pipeline import PipelineTimings, frame_interval_ms
from ..core.prefetch import Prefetcher
from ..core.preprocess import OfflineArtifacts, PanoramaStore
from ..perf import FrameArena
from ..metrics import CpuModel, FrameRecord
from ..predict import PosePredictor, stored_frame_digest
from ..render.splitter import eye_at, reference_frame, render_fi, render_near_be
from ..session import ACTIVE, WARMING, AdmissionController, SyncValidator
from ..session.sync import CORRUPTION_MASK, state_digest
from ..similarity import ssim
from ..sim import any_of
from ..trace import avatars_at
from ..world.games import GameWorld
from .base import (
    MIN_YIELD_MS,
    SENSOR_SCANOUT_MS,
    RunResult,
    Session,
    SessionConfig,
)


def run_coterie(
    world: GameWorld,
    n_players: int,
    config: SessionConfig,
    artifacts: OfflineArtifacts,
    use_cache: bool = True,
    ssim_stride: int = 25,
    overhear: bool = False,
) -> RunResult:
    """Simulate N Coterie players sharing one WiFi link.

    ``use_cache`` False gives Fig. 11's "Coterie w/o cache" variant: far-BE
    frames are still smaller than whole-BE frames, but every interval
    fetches from the server.

    ``overhear`` enables the inter-player variant the paper evaluated and
    *rejected* (§4.6 Version 5): every server reply is overheard and
    admitted into all players' caches.  Kept as an extension so the
    "adds almost nothing over self-reuse" conclusion is testable at the
    full-system level.
    """
    if ssim_stride < 1:
        raise ValueError("ssim_stride must be >= 1")
    session = Session(world, n_players, config)
    sim = session.sim
    supervisor = session.supervisor
    n_slots = session.total_slots
    store = PanoramaStore(
        world,
        config.render_config,
        session.codec,
        cutoff_map=artifacts.cutoff_map,
        kind="far",
        eye_height=world.spec.player.eye_height,
        render_frames=config.render_frames,
        size_model=None if config.render_frames else artifacts.far_size_model,
        disk_cache=artifacts.disk_cache,
    )
    caches = [
        FrameCache(
            capacity_bytes=config.cache_capacity_bytes, policy=config.cache_policy
        )
        for _ in range(n_slots)
    ]
    prefetchers = [
        Prefetcher(
            world.scene,
            world.grid,
            artifacts.cutoff_map,
            artifacts.dist_thresh_map,
            caches[player_id],
        )
        for player_id in range(n_slots)
    ]
    switch_ssims: List[List[float]] = [[] for _ in range(n_slots)]
    last_far = [None] * n_slots
    frame_counters = [0] * n_slots
    degraded = config.degraded_mode
    tracer = session.tracer
    batched_kernels = config.render_config.kernels != "scalar"
    if batched_kernels:
        # Non-scalar kernel modes score cache candidates over the
        # vectorized scan index — bit-identical lookup/nearest outcomes.
        for cache in caches:
            cache.vector_scan = True
    ssim_queue = None
    if config.render_frames and batched_kernels:
        # SSIM scores feed only *metrics*, never simulated timing, so the
        # batched kernels defer them: jobs queue during the simulation and
        # compute in stacked :func:`repro.similarity.ssim_pairs` flushes.
        # Submitted arrays (store payloads, freshly rendered/merged
        # frames) are owned, so submit-triggered flushes are safe here.
        ssim_queue = SsimBatchQueue(
            arena=FrameArena() if config.render_config.reuse_enabled else None,
            batch_target=64,
        )
    if session.hub.enabled:
        for player_id, cache in enumerate(caches):
            session.meter_cache(player_id, cache)
        session.meter_store(store)
    if tracer.enabled:
        for player_id, cache in enumerate(caches):
            cache.tracer = tracer
            cache.owner = player_id
        if ssim_queue is not None:
            def _trace_ssim_flush(jobs: int) -> None:
                args = {"jobs": jobs, "queued_total": ssim_queue.jobs_total}
                if ssim_queue.arena is not None:
                    args["arena_reuse"] = round(
                        ssim_queue.arena.reuse_ratio, 4
                    )
                tracer.instant(
                    "ssim.batch_flush", 0, "render", sim.now, cat="kernel",
                    args=args,
                )

            ssim_queue.on_flush = _trace_ssim_flush
    # Per-player degradation state: an in-flight background fetch (at most
    # one — a second would just contend with the first), and a pending
    # cache re-warm after a reconnect.
    pending_fetch = [False] * n_slots
    needs_rewarm = [False] * n_slots
    # Closed-loop adaptation (None when config.adapt is off): per-slot
    # controllers stepping the CRF ladder, throttling the prefetcher, and
    # choosing app-layer frame drops.  The far-BE size-model mean anchors
    # the ladder forecast.
    abr = session.init_abr(artifacts.far_size_model.mean_bytes)
    # Speculative pose-prediction prefetch (repro.predict): per-slot
    # predictors forecast the viewport a few frames out and background
    # transfers land speculative-tagged, digest-stamped cache entries.
    # None when config.predict is off — the loop below never touches a
    # speculation branch and the clean path stays bit-identical.
    predict = config.predict
    predictors = None
    spec_pending = None
    if predict is not None:
        predictors = [PosePredictor(predict) for _ in range(n_slots)]
        spec_pending = [False] * n_slots
    # Digest stamping is needed by both speculation (oracle validation)
    # and sync validation (state hashes); the clean path never computes
    # one.
    stamp_digests = predict is not None or config.sync is not None

    def authoritative_digest(grid_point):
        """The float64 oracle hash of the frame the store serves now.

        ``PanoramaStore.frame_for`` is memoized and deterministic, so this
        is exactly what an on-demand (non-speculative) fetch of the same
        grid point would display — the convergence target the rollback
        path asserts against.
        """
        return stored_frame_digest(store.frame_for(grid_point), grid_point)

    def overhear_targets(player_id):
        """Caches a server reply is mirrored into (overhear variant)."""
        if supervisor is None:
            return range(n_players)
        return supervisor.active_slots()

    def admit_all(decision, stored, frame_bytes, now_ms, player_id):
        """Admit a fetched frame, mirroring to other caches if overhearing."""
        digest = authoritative_digest(decision.grid_point) if stamp_digests else 0
        cached = prefetchers[player_id].admit(
            decision, stored, frame_bytes, now_ms, origin_player=player_id,
            digest=digest,
        )
        if overhear:
            for other in overhear_targets(player_id):
                if other != player_id:
                    prefetchers[other].admit(
                        decision, stored, frame_bytes, now_ms,
                        origin_player=player_id, digest=digest,
                    )
        return cached

    def speculative_fetch(player_id, decision):
        """Best-effort transfer of a forecast grid point's panorama.

        At most one in flight per player and no retries — a speculative
        transfer is cheap to lose.  The entry lands tagged speculative
        with its oracle digest stamped (perturbed during a scripted
        ``speccorrupt`` window, so validation must catch it before
        anything displays from it).  A slot whose pending flag was reset
        mid-flight (rejoin cleared its cache) abandons the admission.
        """
        stored = store.frame_for(decision.grid_point)
        frame_bytes = stored.wire_bytes
        yield session.link.transfer(frame_bytes, tag="be")
        if not spec_pending[player_id]:
            return  # incarnation changed mid-transfer; stale admission
        digest = authoritative_digest(decision.grid_point)
        if session.speculation_corrupted(player_id, sim.now):
            digest ^= CORRUPTION_MASK
        prefetchers[player_id].admit(
            decision, stored, frame_bytes, sim.now,
            origin_player=player_id, speculative=True, digest=digest,
        )
        spec_pending[player_id] = False
        if tracer.enabled:
            tracer.instant(
                "predict.landed", player_id, "net", sim.now, cat="predict",
                args={"grid": list(decision.grid_point),
                      "bytes": frame_bytes},
            )

    # Cross-peer sync validation (repro.session.sync): a fixed-cadence
    # digest exchange over the PUN channel.  None when config.sync is off.
    validator = None
    needs_resync = None
    last_display = None
    if config.sync is not None:
        # (t_ms, x, y, heading, displayed-frame digest) per slot — the
        # authoritative inputs to each peer's per-round state hash.
        last_display = [(0.0, 0.0, 0.0, 0.0, 0)] * n_slots
        needs_resync = [False] * n_slots

        def sync_roster():
            """Slots whose state hashes are exchanged this round."""
            if supervisor is None:
                return range(n_players)
            return supervisor.active_slots()

        def authoritative_state(slot):
            """Recompute one peer's state hash from live session state."""
            t_ms, x, y, heading, frame_digest = last_display[slot]
            return state_digest(
                t_ms, x, y, heading, frame_digest, caches[slot], slot
            )

        def record_sync_bytes(nbytes):
            """Account digest-exchange traffic as FI-class datagrams."""
            session.link.record_datagram(nbytes, tag="fi")

        def request_resync(slot):
            """Flag a divergent peer for an authoritative re-warm."""
            needs_resync[slot] = True

        validator = SyncValidator(
            sim=sim,
            config=config.sync,
            horizon_ms=session.horizon_ms,
            n_slots=n_slots,
            roster=sync_roster,
            authoritative=authoritative_state,
            injected_at=session.desync_event_ms,
            record_bytes=record_sync_bytes,
            request_resync=request_resync,
            tracer=tracer,
        )
        sim.spawn(validator.process())

    if session.hub.enabled and (predictors is not None or validator is not None):
        # Speculation / sync observability: probe-based totals sampled on
        # the hub cadence, mirroring the cache-stats probes.
        hub = session.hub
        spec_inserts_total = hub.counter("spec_prefetches_landed_total")
        spec_confirms_total = hub.counter("spec_confirms_total")
        spec_rollbacks_total = hub.counter("spec_rollbacks_total")
        desync_alarms_total = hub.counter("desync_alarms_total")

        def _spec_probe():
            spec_inserts_total.set_total(float(
                sum(c.stats.speculative_inserts for c in caches)
            ))
            spec_confirms_total.set_total(float(
                sum(c.stats.speculative_confirms for c in caches)
            ))
            spec_rollbacks_total.set_total(float(sum(
                session.collectors[s].resilience.spec_rollbacks
                for s in range(n_slots)
            )))
            if validator is not None:
                desync_alarms_total.set_total(float(validator.total_alarms))

        hub.register_probe(_spec_probe)

    def resync(player_id):
        """Re-warm a desynced peer from authoritative state.

        GGPO-style repair, reusing the retry/backoff fetch machinery and
        the rejoin cache-repair discipline: every unconfirmed speculative
        entry is dropped, then the panorama for the player's *current*
        viewpoint is re-fetched with :func:`blocking_fetch` (timeout,
        abort, capped exponential backoff) and admitted with a fresh
        oracle digest.
        """
        needs_resync[player_id] = False
        now = sim.now
        caches[player_id].drop_speculative()
        sample = session.position_at(player_id, now)
        decision = prefetchers[player_id].plan_speculative(
            sample.position, sample.heading, now
        )
        stored = store.frame_for(decision.grid_point)
        perf.count("sync.resyncs")
        if tracer.enabled:
            tracer.instant(
                "sync.resync", player_id, "net", now, cat="sync",
                args={"grid": list(decision.grid_point),
                      "bytes": stored.wire_bytes},
            )
        ok = yield from blocking_fetch(player_id, stored.wire_bytes)
        if ok:
            admit_all(decision, stored, stored.wire_bytes, sim.now, player_id)

    def background_fetch(player_id, decision, stored, frame_bytes, first_ev):
        """Finish a deadline-missed fetch off the display's critical path.

        Waits with a timeout; on timeout the attempt is withdrawn from
        the medium and re-issued with exponentially backed-off patience,
        capped, until the frame lands or the retry budget is spent.
        """
        resilience = session.collectors[player_id].resilience
        ev = first_ev
        timeout_ms = config.fetch_timeout_ms
        started_ms = sim.now
        for attempt in range(config.fetch_max_retries + 1):
            if attempt > 0:
                resilience.fetch_retries += 1
                perf.count("resilience.fetch_retries")
                if tracer.enabled:
                    tracer.instant(
                        "fetch.retry", player_id, "net", sim.now,
                        args={"attempt": attempt, "bytes": frame_bytes},
                    )
                ev = session.link.transfer(frame_bytes, tag="be")
            yield any_of(sim, [ev, sim.timeout(timeout_ms)])
            if not ev.triggered and session.link.abort(ev):
                timeout_ms = min(timeout_ms * 2.0, config.fetch_backoff_cap_ms)
                continue
            if not ev.triggered:
                # Completion raced the timeout (e.g. mid-jitter); the
                # event is about to fire — wait it out.
                yield ev
            if abr is not None:
                abr[player_id].observe_transfer(sim.now, frame_bytes, ev.value)
            admit_all(decision, stored, frame_bytes, sim.now, player_id)
            pending_fetch[player_id] = False
            if tracer.enabled:
                tracer.complete(
                    "fetch.background", player_id, "net", started_ms,
                    sim.now - started_ms, cat="net",
                    args={"attempts": attempt + 1, "bytes": frame_bytes},
                )
            return
        resilience.fetches_abandoned += 1
        perf.count("resilience.fetches_abandoned")
        pending_fetch[player_id] = False
        if tracer.enabled:
            tracer.complete(
                "fetch.abandoned", player_id, "net", started_ms,
                sim.now - started_ms, cat="net",
                args={"attempts": config.fetch_max_retries + 1,
                      "bytes": frame_bytes},
            )

    def blocking_fetch(player_id, frame_bytes):
        """One warm-up fetch with the background-retry discipline.

        Same timeout / abort / capped-exponential-backoff pattern as
        :func:`background_fetch`, but blocking — the joiner has no
        display to keep at cadence yet.  Returns True when the frame
        landed, False when the retry budget is spent.
        """
        resilience = session.collectors[player_id].resilience
        timeout_ms = config.fetch_timeout_ms
        ev = session.link.transfer(frame_bytes, tag="be")
        for attempt in range(config.fetch_max_retries + 1):
            if attempt > 0:
                resilience.fetch_retries += 1
                perf.count("resilience.fetch_retries")
                ev = session.link.transfer(frame_bytes, tag="be")
            yield any_of(sim, [ev, sim.timeout(timeout_ms)])
            if not ev.triggered and session.link.abort(ev):
                timeout_ms = min(timeout_ms * 2.0, config.fetch_backoff_cap_ms)
                continue
            if not ev.triggered:
                yield ev  # completion raced the timeout; nearly done
            return True
        resilience.fetches_abandoned += 1
        perf.count("resilience.fetches_abandoned")
        return False

    def warmup(player_id: int):
        """Late-joiner warm-up: stream the working set before ACTIVE.

        Fetches the panoramas the joiner's trajectory needs next (one
        grid point per upcoming display interval span) through the
        normal prefetch planner, so admission's promise — the player
        starts with a warm cache — is kept with real transfers on the
        shared link, not by fiat.
        """
        started_ms = sim.now
        prefetcher = prefetchers[player_id]
        fetched = 0
        lookahead_ms = 0.0
        while fetched < supervisor.config.warmup_fetches:
            if not supervisor.poll(player_id):
                return  # crashed / left / evicted mid-handshake
            sample = session.position_at(player_id, sim.now + lookahead_ms)
            decision = prefetcher.plan(sample.position, sample.heading, sim.now)
            lookahead_ms += 200.0
            if not decision.needs_fetch:
                fetched += 1  # trajectory start revisits a cached point
                continue
            stored = store.frame_for(decision.grid_point)
            if tracer.enabled:
                session.trace_kernel_reuse(store, player_id, sim.now)
            ok = yield from blocking_fetch(player_id, stored.wire_bytes)
            if ok:
                admit_all(decision, stored, stored.wire_bytes, sim.now,
                          player_id)
            fetched += 1
        if not supervisor.poll(player_id):
            return
        if supervisor.activate(player_id) and tracer.enabled:
            tracer.complete(
                "warmup", player_id, "net", started_ms, sim.now - started_ms,
                cat="membership",
                args={"fetches": supervisor.config.warmup_fetches},
            )

    def client(player_id: int):
        prefetcher = prefetchers[player_id]
        collector = session.collectors[player_id]
        controller = abr[player_id] if abr is not None else None
        if supervisor is not None and supervisor.state(player_id) == WARMING:
            yield from warmup(player_id)
            if supervisor.state(player_id) != ACTIVE:
                return  # never finished the handshake
        while sim.now < session.horizon_ms:
            if supervisor is not None and not supervisor.poll(player_id):
                return  # left, crashed, or evicted: no silent rejoin
            if degraded:
                resume = session.outage_resume_ms(player_id, sim.now)
                if resume is not None and resume > sim.now:
                    # Disconnected: produce no frames until the outage
                    # ends, then re-warm the cache before resuming.
                    outage_start = sim.now
                    yield resume - sim.now
                    if tracer.enabled:
                        session.trace_outage(player_id, outage_start, sim.now)
                    needs_rewarm[player_id] = True
                    continue
            if needs_resync is not None and needs_resync[player_id]:
                # A desync alarm flagged this peer: repair before the
                # next frame displays anything.
                yield from resync(player_id)
            t0 = sim.now
            if controller is not None:
                # Ladder re-evaluation and prefetch throttling happen
                # *before* plan() so this frame's fetch (and its cache
                # acceptance band) already reflect the chosen rung.
                controller.on_frame(t0)
                prefetcher.thresh_scale = controller.thresh_scale()
            sample = session.position_at(player_id, t0)
            if predictors is not None:
                # Feed the predictor (unless a scripted stale-speculation
                # storm froze its observations) and age out unconfirmed
                # speculative entries before this frame's lookup.
                if not session.speculation_frozen(player_id, t0):
                    predictors[player_id].observe(
                        t0, sample.position, sample.heading
                    )
                expired = caches[player_id].expire_speculative(
                    t0, predict.speculative_ttl_ms
                )
                if expired:
                    perf.count("predict.spec_expired")
                    if tracer.enabled:
                        tracer.instant(
                            "predict.expired", player_id, "cache", t0,
                            cat="predict", args={"entries": expired},
                        )
            decision = prefetcher.plan(sample.position, sample.heading, t0)
            if predictors is not None:
                # Rollback discipline: a lookup that returned speculative
                # state must validate it against the float64 oracle before
                # the display may trust it.  On mismatch the entry is
                # rolled back and the plan re-runs on confirmed state
                # only, converging on exactly what an on-demand fetch
                # would have displayed (the digest equality below *is*
                # the convergence assertion).
                while (
                    decision.cached is not None and decision.cached.speculative
                ):
                    spec_frame = decision.cached
                    if spec_frame.digest == authoritative_digest(
                        spec_frame.grid_point
                    ):
                        caches[player_id].confirm(spec_frame)
                        collector.resilience.spec_confirms += 1
                        perf.count("predict.spec_confirms")
                        break
                    caches[player_id].discard(spec_frame)
                    collector.resilience.spec_rollbacks += 1
                    perf.count("predict.spec_rollbacks")
                    if tracer.enabled:
                        tracer.instant(
                            "predict.rollback", player_id, "cache", t0,
                            cat="predict",
                            args={"grid": list(spec_frame.grid_point)},
                        )
                    decision = prefetcher.plan(
                        sample.position, sample.heading, t0
                    )

            frame_bytes = 0
            transfer_ms = 0.0
            deadline_missed = False
            stale_age_ms = None
            dropped = False
            if decision.needs_fetch or not use_cache:
                if not degraded:
                    # Clean path — identical to the pre-robustness code.
                    stored = store.frame_for(decision.grid_point)
                    if tracer.enabled:
                        session.trace_kernel_reuse(store, player_id, t0)
                    frame_bytes = stored.wire_bytes
                    transfer_ms = yield session.link.transfer(frame_bytes, tag="be")
                    cached = admit_all(decision, stored, frame_bytes, t0, player_id)
                elif pending_fetch[player_id]:
                    # Still recovering a late fetch: display the nearest
                    # stale frame, issue nothing new.
                    deadline_missed = True
                    cached = caches[player_id].nearest(decision.position,
                                                       now_ms=t0)
                    if cached is not None:
                        stale_age_ms = t0 - cached.inserted_ms
                        perf.count("resilience.stale_frames")
                elif (
                    controller is not None
                    and not needs_rewarm[player_id]
                    and len(caches[player_id]) > 0
                    and controller.should_drop(
                        t0, controller.scaled_bytes(controller.nominal_bytes)
                    )
                ):
                    # App-layer drop: the forecast says this fetch cannot
                    # land anywhere near the deadline, so the transfer is
                    # never issued (no server render, no medium load) and
                    # the nearest cached panorama displays instead.  A
                    # chosen degradation — not a deadline miss.
                    dropped = True
                    cached = caches[player_id].nearest(decision.position,
                                                       now_ms=t0)
                    stale_age_ms = t0 - cached.inserted_ms
                    perf.count("adapt.drops")
                else:
                    stored = store.frame_for(decision.grid_point)
                    if tracer.enabled:
                        session.trace_kernel_reuse(store, player_id, t0)
                    frame_bytes = stored.wire_bytes
                    if controller is not None:
                        # Re-encode at the current rung: the ladder only
                        # changes the wire size (§4.5's CRF staircase).
                        frame_bytes = controller.scaled_bytes(frame_bytes)
                    stall_ms = session.server_stall_ms(t0)
                    if stall_ms > 0:
                        yield stall_ms
                    transfer_ev = session.link.transfer(frame_bytes, tag="be")
                    if needs_rewarm[player_id]:
                        # Reconnect re-warm: block on this fetch so the
                        # cache is fresh before the cadence resumes.
                        needs_rewarm[player_id] = False
                        collector.resilience.rewarm_fetches += 1
                        perf.count("resilience.rewarm_fetches")
                        if tracer.enabled:
                            tracer.instant(
                                "fetch.rewarm", player_id, "net", sim.now,
                                args={"bytes": frame_bytes},
                            )
                        transfer_ms = stall_ms + (yield transfer_ev)
                        if controller is not None:
                            controller.observe_transfer(
                                sim.now, frame_bytes, transfer_ms - stall_ms
                            )
                        cached = admit_all(
                            decision, stored, frame_bytes, sim.now, player_id
                        )
                    else:
                        deadline = session.prefetch_deadline_ms()
                        yield any_of(
                            sim, [transfer_ev, sim.timeout(deadline)]
                        )
                        if transfer_ev.triggered:
                            transfer_ms = stall_ms + transfer_ev.value
                            if controller is not None:
                                controller.observe_transfer(
                                    sim.now, frame_bytes, transfer_ev.value
                                )
                            cached = admit_all(
                                decision, stored, frame_bytes, sim.now, player_id
                            )
                        else:
                            deadline_missed = True
                            perf.count("resilience.deadline_misses")
                            fallback = caches[player_id].nearest(
                                decision.position, now_ms=sim.now
                            )
                            if fallback is None:
                                # Nothing cached to show (cold start):
                                # the display has to wait for the fetch.
                                transfer_ms = stall_ms + (yield transfer_ev)
                                if controller is not None:
                                    controller.observe_transfer(
                                        sim.now, frame_bytes,
                                        transfer_ms - stall_ms,
                                    )
                                cached = admit_all(
                                    decision, stored, frame_bytes, sim.now,
                                    player_id,
                                )
                            else:
                                # Stale-frame fallback: keep the display
                                # at cadence, finish the fetch off-path.
                                cached = fallback
                                stale_age_ms = t0 - fallback.inserted_ms
                                perf.count("resilience.stale_frames")
                                transfer_ms = stall_ms + deadline
                                pending_fetch[player_id] = True
                                sim.spawn(background_fetch(
                                    player_id, decision, stored, frame_bytes,
                                    transfer_ev,
                                ))
            else:
                cached = decision.cached
                if degraded:
                    needs_rewarm[player_id] = False

            if predictors is not None and not spec_pending[player_id]:
                # Forecast the viewport a few frames out; when the
                # predictor is confident and the forecast grid point is
                # not already covered, start a best-effort speculative
                # transfer off the display's critical path.
                prediction = predictors[player_id].predict(t0)
                if (
                    prediction is not None
                    and prediction.confidence_m <= predict.max_confidence_m
                ):
                    spec_decision = prefetcher.plan_speculative(
                        prediction.position, prediction.heading, t0
                    )
                    if spec_decision.cached is None:
                        spec_pending[player_id] = True
                        collector.resilience.spec_prefetches += 1
                        perf.count("predict.spec_prefetches")
                        if tracer.enabled:
                            tracer.instant(
                                "predict.speculate", player_id, "net", t0,
                                cat="predict",
                                args={
                                    "grid": list(spec_decision.grid_point),
                                    "confidence_m": round(
                                        prediction.confidence_m, 4
                                    ),
                                },
                            )
                        sim.spawn(
                            speculative_fetch(player_id, spec_decision)
                        )
            if last_display is not None:
                # The authoritative inputs to this peer's next exchanged
                # state hash: the pose it displayed and the oracle digest
                # of the frame it displayed it with.
                last_display[player_id] = (
                    t0, sample.position.x, sample.position.y,
                    sample.heading,
                    cached.digest if cached is not None else 0,
                )

            near_ms = session.cost_model.near_be_ms(
                world.scene, sample.position, decision.cutoff_radius
            )
            session.pun.tick()
            timings = PipelineTimings(
                render_fi_ms=session.fi_ms,
                render_near_be_ms=near_ms,
                decode_ms=session.cost_model.decode_ms(3840, 2160),
                prefetch_ms=transfer_ms,
                sync_ms=session.pun.sync_latency_ms(),
                merge_ms=config.device.merge_ms,
                setup_ms=config.device.setup_ms,
            )
            interval = frame_interval_ms(timings)

            displayed_ssim = None
            ssim_job = None
            if config.render_frames:
                payload = cached.payload if cached is not None else None
                far_image = payload.decoded if payload is not None else None
                if far_image is not None:
                    if last_far[player_id] is not None and (
                        far_image is not last_far[player_id]
                    ):
                        if ssim_queue is not None:
                            ssim_queue.submit(
                                last_far[player_id], far_image,
                                switch_ssims[player_id].append,
                            )
                        else:
                            switch_ssims[player_id].append(
                                ssim(last_far[player_id], far_image)
                            )
                    last_far[player_id] = far_image
                    if frame_counters[player_id] % ssim_stride == 0:
                        displayed, reference = _displayed_frame_pair(
                            session, world, player_id, sample, decision, far_image
                        )
                        if ssim_queue is None:
                            displayed_ssim = ssim(displayed, reference)
                        else:
                            ssim_job = (displayed, reference)
            frame_counters[player_id] += 1

            record = FrameRecord(
                t_ms=t0 + interval,
                interval_ms=interval,
                render_ms=timings.render_ms - timings.setup_ms + timings.merge_ms,
                responsiveness_ms=timings.split_render_ms() + SENSOR_SCANOUT_MS,
                net_delay_ms=transfer_ms,
                frame_bytes=frame_bytes,
                cache_hit=not decision.needs_fetch if use_cache else None,
                displayed_ssim=displayed_ssim,
                deadline_missed=deadline_missed,
                stale_age_ms=stale_age_ms,
                dropped=dropped,
            )
            collector.add(record)
            if session.hub.enabled:
                session.meter_frame(player_id, record)
            if ssim_job is not None:
                # The record was added with displayed_ssim=None; the flush
                # callback patches the score in by index (FrameRecord is
                # frozen).  Scores never steer the simulation, so patching
                # after the fact is observationally identical.
                def _patch_ssim(
                    value, records=collector.records,
                    index=len(collector.records) - 1,
                ):
                    records[index] = replace(
                        records[index], displayed_ssim=value
                    )

                ssim_queue.submit(ssim_job[0], ssim_job[1], _patch_ssim)
            if supervisor is not None:
                supervisor.note_frame(player_id, t0 + interval)
            if tracer.enabled:
                if not use_cache:
                    outcome = "bypass"
                elif not decision.needs_fetch:
                    outcome = "hit"
                elif dropped:
                    outcome = "drop"
                elif stale_age_ms is not None:
                    outcome = "stale"
                else:
                    outcome = "fetch"
                session.trace_pipeline_frame(
                    player_id, frame_counters[player_id] - 1, t0, timings,
                    interval, frame_bytes=frame_bytes, cache=outcome,
                    deadline_missed=deadline_missed, stale_age_ms=stale_age_ms,
                )
            remaining = interval - transfer_ms
            # Clamp to a minimum 1-tick yield: a transfer slower than the
            # interval must not let the loop re-enter plan() at the same
            # simulated instant (busy-spin hazard).
            yield remaining if remaining > 0 else MIN_YIELD_MS

    def _displayed_frame_pair(session, world, player_id, sample, decision,
                              far_image):
        """The actually displayed frame and its all-local reference.

        The caller scores ``ssim(displayed, reference)`` — inline on the
        scalar path, deferred through the :class:`SsimBatchQueue` on the
        batched path (bit-identical either way).
        """
        eye = eye_at(world.scene, sample.position, world.spec.player.eye_height)
        roster = (
            list(range(n_players)) if supervisor is None
            else supervisor.active_slots()
        )
        positions = [
            session.position_at(other, sim.now).position for other in roster
        ]
        exclude = roster.index(player_id) if player_id in roster else -1
        avatars = avatars_at(world, positions, exclude_player=exclude)
        near = render_near_be(
            world.scene, eye, config.render_config, decision.cutoff_radius
        )
        fi_layer = render_fi(avatars, eye, config.render_config)
        from ..render.rasterizer import merge_layers
        from ..core.merger import layer_from_decoded

        displayed = merge_layers(layer_from_decoded(far_image), near, fi_layer)
        reference = reference_frame(
            world.scene, eye, config.render_config, avatars=avatars
        )
        return displayed, reference

    if supervisor is None:
        for player_id in range(n_players):
            sim.spawn(client(player_id))
    else:
        speed = max(world.spec.player.speed, 1e-3)
        far_bytes = artifacts.far_size_model.mean_bytes

        def be_kbps_for(slot):
            """Dist-thresh fetch-rate estimate (Constraint 2's BE term).

            A player moving at ``speed`` re-fetches roughly every
            dist-thresh metres (§4.3): the reuse displacement at its
            current position bounds how far a cached panorama stays
            usable, so fetch rate ≈ speed / dist_thresh, capped at one
            fetch per display interval.
            """
            position = session.position_at(slot, sim.now).position
            thresh = max(
                artifacts.dist_thresh_map.threshold_for(position), 1e-3
            )
            fetch_hz = min(60.0, speed / thresh)
            return fetch_hz * far_bytes * 8.0 / 1000.0

        def render_ok(slot):
            """Constraint 1 at the joiner's spawn region."""
            position = session.position_at(slot, sim.now).position
            cutoff = artifacts.cutoff_map.cutoff_for(position)
            return satisfies_constraint(
                session.cost_model, world.scene, position, cutoff,
                artifacts.budget,
            )

        admission = AdmissionController(
            budget=BandwidthBudget(
                capacity_mbps=config.wifi_mbps,
                utilization_bound=supervisor.config.utilization_bound,
            ),
            be_kbps_for=be_kbps_for,
            fi_kbps_for=session.pun.expected_bandwidth_kbps,
            max_players=supervisor.config.max_players,
            render_check=render_ok,
        )

        def spawn_client(slot, rejoining):
            if rejoining:
                # A new incarnation starts cold: the previous life's
                # cache, pending fetch, re-warm, and speculation state
                # are all stale.
                caches[slot].clear()
                pending_fetch[slot] = False
                needs_rewarm[slot] = False
                if predictors is not None:
                    predictors[slot] = PosePredictor(predict)
                    spec_pending[slot] = False
                if needs_resync is not None:
                    needs_resync[slot] = False
            sim.spawn(client(slot))

        supervisor.start(spawn_client, admission)
    sim.run_until(session.horizon_ms)
    if ssim_queue is not None:
        # Score whatever is still queued before the session report reads
        # switch SSIMs and displayed-SSIM records.
        ssim_queue.flush()
    if predictors is not None:
        # Stamp predictor / cache speculation outcomes into the per-slot
        # resilience stats so collector.summary() reports them.
        for slot in range(n_slots):
            resilience = session.collectors[slot].resilience
            resilience.spec_predictions = predictors[slot].predictions
            resilience.spec_mispredictions = predictors[slot].mispredictions
            resilience.spec_expired = caches[slot].stats.speculative_expired
    if validator is not None:
        for slot in range(n_slots):
            resilience = session.collectors[slot].resilience
            slot_stats = validator.stats[slot]
            resilience.desync_alarms = slot_stats.alarms
            resilience.desync_detection_ms = slot_stats.max_detection_ms
            resilience.resyncs = slot_stats.resyncs
            resilience.resync_recovery_ms = slot_stats.recovery_ms

    cpu_model = CpuModel()
    be_mbps = session.link.bandwidth_mbps("be", session.horizon_ms)
    cpu = [
        cpu_model.utilization(
            gpu_utilization=session.collectors[p].gpu_utilization(),
            net_mbps=be_mbps / n_players,
            decoding=True,
            cache_enabled=use_cache,
            n_players=n_players,
        )
        if session.collectors[p].records
        else 0.0
        for p in range(session.total_slots)
    ]
    name = "coterie" if use_cache else "coterie_nocache"
    if overhear:
        name = "coterie_overhear"
    return session.finish(name, cpu, switch_ssims=switch_ssims)
