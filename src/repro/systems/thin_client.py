"""The Thin-client baseline: remote rendering, streamed frames (§2.2).

The server renders each client's full view, H.264-encodes it, and streams
it over the shared WiFi; the phone only decodes and displays.  The frame
path is inherently sequential — pose upload, server render, encode,
transfer, decode, display — so even one player sits at 41-50 ms per frame,
and each extra player inflates the transfer stage through medium
contention (Table 1's 52-64 ms at 2 players).
"""

from __future__ import annotations

from ..codec import FOUR_K_PIXELS
from ..core.constraint import BandwidthBudget
from ..core.preprocess import FrameSizeModel, calibrate_size_model
from ..metrics import CpuModel, FrameRecord
from ..session import ACTIVE, WARMING, AdmissionController
from ..render import GTX1080TI, RenderCostModel
from ..world.games import GameWorld
from .base import (
    MIN_YIELD_MS,
    SENSOR_SCANOUT_MS,
    RunResult,
    Session,
    SessionConfig,
)

# Pose upload + server-side session/compositor scheduling per frame; the
# calibrated residual between the measurable stages and the paper's 41-50 ms
# single-player inter-frame latency.
POSE_UPLOAD_MS = 2.0
SERVER_SCHEDULING_MS = 14.0


def run_thin_client(
    world: GameWorld,
    n_players: int,
    config: SessionConfig,
    size_model: FrameSizeModel = None,
) -> RunResult:
    """Simulate N players on the remote-rendering baseline."""
    session = Session(world, n_players, config)
    sim = session.sim
    supervisor = session.supervisor
    server_model = RenderCostModel(GTX1080TI)
    if size_model is None:
        size_model = calibrate_size_model(
            world, config.render_config, session.codec, None, kind="whole",
            samples=6, seed=config.seed + 5,
            eye_height=world.spec.player.eye_height,
        )

    tracer = session.tracer
    # Closed-loop adaptation (None when config.adapt is off).  The ladder
    # scales the streamed frame's wire size; a drop holds the previous
    # streamed frame on screen for one display interval instead of
    # pushing a doomed transfer into the congested medium.
    abr = session.init_abr(size_model.mean_bytes)

    def warmup(player_id: int):
        """Late-joiner handshake: stream the first rendered frame.

        The thin client has no local state to warm, but the server must
        deliver one full frame through the shared link before the
        stream is considered established.
        """
        started_ms = sim.now
        if not supervisor.poll(player_id):
            return
        sample = session.position_at(player_id, sim.now)
        grid_point = session.world.grid.snap(sample.position)
        frame_bytes = size_model.sample(grid_point)
        stall_ms = session.server_stall_ms(sim.now)
        if stall_ms > 0:
            yield stall_ms
        yield session.link.transfer(frame_bytes, tag="be")
        if not supervisor.poll(player_id):
            return
        if supervisor.activate(player_id) and tracer.enabled:
            tracer.complete(
                "warmup", player_id, "net", started_ms, sim.now - started_ms,
                cat="membership", args={"bytes": frame_bytes},
            )

    def client(player_id: int):
        controller = abr[player_id] if abr is not None else None
        last_frame_ms = None  # when a streamed frame last reached the screen
        frame_index = 0
        if supervisor is not None and supervisor.state(player_id) == WARMING:
            yield from warmup(player_id)
            if supervisor.state(player_id) != ACTIVE:
                return
        while sim.now < session.horizon_ms:
            if supervisor is not None and not supervisor.poll(player_id):
                return  # left, crashed, or evicted: no silent rejoin
            resume = session.outage_resume_ms(player_id, sim.now)
            if resume is not None and resume > sim.now:
                outage_start = sim.now
                yield resume - sim.now  # disconnected: no frames streamed
                if tracer.enabled:
                    session.trace_outage(player_id, outage_start, sim.now)
                continue
            t0 = sim.now
            if controller is not None:
                controller.on_frame(t0)
            sample = session.position_at(player_id, t0)
            grid_point = session.world.grid.snap(sample.position)
            frame_bytes = size_model.sample(grid_point)
            if controller is not None:
                frame_bytes = controller.scaled_bytes(frame_bytes)

            dropped = False
            stale_age_ms = None
            if (
                controller is not None
                and last_frame_ms is not None
                and controller.should_drop(t0, frame_bytes)
            ):
                # App-layer drop: hold the previous streamed frame for one
                # display interval; no pose upload, render, or transfer.
                dropped = True
                stale_age_ms = t0 - last_frame_ms
                frame_bytes = 0
                transfer_ms = 0.0
                stall_ms = 0.0
                server_render_ms = 0.0
                encode_ms = 0.0
                decode_ms = 0.0
                latency = 1000.0 / 60.0
            else:
                server_render_ms = server_model.frame_ms(
                    session.cost_model.fi_ms(world.spec.fi_triangles) / 10.0,
                    server_model.whole_be_ms(world.scene, sample.position),
                )
                stall_ms = session.server_stall_ms(t0)
                if stall_ms > 0:
                    yield stall_ms  # scripted server-side stall
                encode_ms = session.codec_timing.encode_ms(FOUR_K_PIXELS)
                transfer_ms = yield session.link.transfer(frame_bytes, tag="be")
                if controller is not None:
                    controller.observe_transfer(sim.now, frame_bytes, transfer_ms)
                decode_ms = session.cost_model.decode_ms(3840, 2160)

                latency = (
                    POSE_UPLOAD_MS
                    + SERVER_SCHEDULING_MS
                    + stall_ms
                    + server_render_ms
                    + encode_ms
                    + transfer_ms
                    + decode_ms
                )
            interval = max(latency, 1000.0 / 60.0)
            if not dropped:
                last_frame_ms = t0 + interval
            session.pun.tick()
            record = FrameRecord(
                t_ms=t0 + interval,
                interval_ms=interval,
                render_ms=1.0,  # phone GPU only composites the stream
                responsiveness_ms=latency + SENSOR_SCANOUT_MS,
                net_delay_ms=transfer_ms,
                frame_bytes=frame_bytes,
                stale_age_ms=stale_age_ms,
                dropped=dropped,
            )
            session.collectors[player_id].add(record)
            if session.hub.enabled:
                session.meter_frame(player_id, record)
            if supervisor is not None:
                supervisor.note_frame(player_id, t0 + interval)
            if tracer.enabled:
                session.trace_sequential_frame(
                    player_id, frame_index, t0,
                    (
                        ("upload", POSE_UPLOAD_MS + SERVER_SCHEDULING_MS),
                        ("server", stall_ms + server_render_ms + encode_ms),
                        ("transfer", transfer_ms),
                        ("decode", decode_ms),
                    ),
                    interval, frame_bytes=frame_bytes,
                )
            frame_index += 1
            remaining = interval - transfer_ms
            # Minimum 1-tick yield (busy-spin hazard; see run_coterie).
            yield remaining if remaining > 0 else MIN_YIELD_MS

    if supervisor is None:
        for player_id in range(n_players):
            sim.spawn(client(player_id))
    else:
        # Streamed whole frames every display interval: same Constraint-2
        # arithmetic as Multi-Furion.
        whole_kbps = 60.0 * size_model.mean_bytes * 8.0 / 1000.0
        admission = AdmissionController(
            budget=BandwidthBudget(
                capacity_mbps=config.wifi_mbps,
                utilization_bound=supervisor.config.utilization_bound,
            ),
            be_kbps_for=lambda slot: whole_kbps,
            fi_kbps_for=session.pun.expected_bandwidth_kbps,
            max_players=supervisor.config.max_players,
        )
        supervisor.start(lambda slot, rejoining: sim.spawn(client(slot)),
                         admission)
    sim.run_until(session.horizon_ms)

    cpu_model = CpuModel()
    be_mbps = session.link.bandwidth_mbps("be", session.horizon_ms)
    cpu = [
        cpu_model.utilization(
            gpu_utilization=session.collectors[p].gpu_utilization(),
            net_mbps=be_mbps / n_players,
            decoding=True,
            n_players=n_players,
        )
        if session.collectors[p].records
        else 0.0
        for p in range(session.total_slots)
    ]
    return session.finish("thin_client", cpu)
