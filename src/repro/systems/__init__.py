"""End-to-end systems: Mobile, Thin-client, Multi-Furion, Coterie."""

from .base import (
    SENSOR_SCANOUT_MS,
    PlayerResult,
    RunResult,
    Session,
    SessionConfig,
)
from .coterie import run_coterie
from .experiment import SYSTEMS, prepare_artifacts, run_system
from .mobile import run_mobile
from .multi_furion import run_multi_furion
from .thin_client import run_thin_client

__all__ = [
    "PlayerResult",
    "RunResult",
    "SENSOR_SCANOUT_MS",
    "SYSTEMS",
    "Session",
    "SessionConfig",
    "prepare_artifacts",
    "run_coterie",
    "run_mobile",
    "run_multi_furion",
    "run_system",
    "run_thin_client",
]
