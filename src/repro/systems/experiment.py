"""High-level experiment runner: one entry point for every system.

The benchmarks (and examples) drive everything through
:func:`run_system`, which dispatches by system name and owns the
artifact-preparation step Coterie needs.
"""

from __future__ import annotations

from typing import Optional

from ..codec import FrameCodec
from ..core.preprocess import OfflineArtifacts, PreprocessOptions, preprocess_game
from ..render import RenderCostModel
from ..world.games import GameWorld, load_game
from .base import RunResult, SessionConfig
from .coterie import run_coterie
from .mobile import run_mobile
from .multi_furion import run_multi_furion
from .thin_client import run_thin_client

SYSTEMS = (
    "mobile",
    "thin_client",
    "multi_furion",
    "multi_furion_cache",
    "coterie",
    "coterie_nocache",
)

_ARTIFACT_CACHE = {}


def prepare_artifacts(
    world: GameWorld,
    config: SessionConfig,
    seed: int = 3,
    workers: int = 1,
    cache_dir: Optional[str] = None,
) -> OfflineArtifacts:
    """Run (and memoize) the offline preprocessing for a game.

    Keyed on the game, render resolution, and seed — the expensive part of
    a Coterie experiment that every run over the same game shares.
    ``workers``/``cache_dir`` select parallel execution and a persistent
    disk cache (see :class:`~repro.core.preprocess.PreprocessOptions`);
    the defaults keep the historical serial, in-memory behaviour.
    """
    key = (
        world.name,
        world.scale,
        config.render_config.width,
        config.render_config.height,
        seed,
        cache_dir,
    )
    cached = _ARTIFACT_CACHE.get(key)
    if cached is not None:
        return cached
    options = None
    if workers != 1 or cache_dir is not None:
        options = PreprocessOptions(workers=workers, cache_dir=cache_dir)
    artifacts = preprocess_game(
        world,
        RenderCostModel(config.device),
        config.render_config,
        FrameCodec(crf=config.codec_crf),
        seed=seed,
        options=options,
    )
    _ARTIFACT_CACHE[key] = artifacts
    return artifacts


def run_system(
    system: str,
    game: str,
    n_players: int,
    config: Optional[SessionConfig] = None,
    artifacts: Optional[OfflineArtifacts] = None,
    scale: float = 1.0,
) -> RunResult:
    """Run one (system, game, player-count) experiment end to end."""
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; choose from {SYSTEMS}")
    config = config if config is not None else SessionConfig()
    world = load_game(game, scale=scale)
    if system == "mobile":
        return run_mobile(world, n_players, config)
    if system == "thin_client":
        return run_thin_client(world, n_players, config)
    if system == "multi_furion":
        return run_multi_furion(world, n_players, config, exact_cache=False)
    if system == "multi_furion_cache":
        return run_multi_furion(world, n_players, config, exact_cache=True)
    if artifacts is None:
        artifacts = prepare_artifacts(world, config)
    if system == "coterie":
        return run_coterie(world, n_players, config, artifacts, use_cache=True)
    return run_coterie(world, n_players, config, artifacts, use_cache=False)
