"""Multi-Furion: the replicated 2-layer split-rendering architecture (§3).

Each client renders FI locally, decodes the previously prefetched
*whole-BE* panorama, prefetches the next grid point's panorama from the
server, and syncs FI through PUN — Furion's pipeline replicated N-fold.
The prefetch happens every rendering interval (a fresh BE frame per grid
point), so aggregate BE traffic grows linearly with players and the shared
medium becomes the bottleneck: ~276 Mbps per player means two players
already push the inter-frame latency past the 16.7 ms budget (Table 1).

``exact_cache`` adds Fig. 11's "Multi-Furion with cache" variant: clients
cache whole-BE frames and reuse *exact* grid-point matches — which almost
never hit, because players do not revisit exact grid points (§4.6,
Version 1).
"""

from __future__ import annotations

from typing import Optional

from ..core.cache import CachedFrame, FrameCache
from ..core.constraint import BandwidthBudget
from ..core.pipeline import PipelineTimings, frame_interval_ms
from ..core.preprocess import FrameSizeModel, calibrate_size_model
from ..metrics import CpuModel, FrameRecord
from ..session import ACTIVE, WARMING, AdmissionController
from ..world.games import GameWorld
from .base import (
    MIN_YIELD_MS,
    SENSOR_SCANOUT_MS,
    RunResult,
    Session,
    SessionConfig,
)

_WHOLE_LEAF = (0.0, 0.0, 0.0, 0.0)  # whole-BE frames have no leaf regions


def run_multi_furion(
    world: GameWorld,
    n_players: int,
    config: SessionConfig,
    exact_cache: bool = False,
    size_model: Optional[FrameSizeModel] = None,
) -> RunResult:
    """Simulate N players under the replicated Furion architecture."""
    session = Session(world, n_players, config)
    sim = session.sim
    supervisor = session.supervisor
    n_slots = session.total_slots
    if size_model is None:
        size_model = calibrate_size_model(
            world, config.render_config, session.codec, None, kind="whole",
            samples=6, seed=config.seed + 6,
            eye_height=world.spec.player.eye_height,
        )
    caches = [
        FrameCache(
            capacity_bytes=config.cache_capacity_bytes,
            policy=config.cache_policy,
            exact_only=True,
        )
        if exact_cache
        else None
        for _ in range(n_slots)
    ]

    tracer = session.tracer
    if session.hub.enabled:
        for player_id, cache in enumerate(caches):
            if cache is not None:
                session.meter_cache(player_id, cache)
    if tracer.enabled:
        for player_id, cache in enumerate(caches):
            if cache is not None:
                cache.tracer = tracer
                cache.owner = player_id
    # Closed-loop adaptation (None when config.adapt is off).  Without a
    # far-BE prefetcher there is nothing to throttle; the ladder scales
    # the whole-BE wire size and the drop policy re-displays the previous
    # panorama when the forecast says a fetch cannot land in time.
    abr = session.init_abr(size_model.mean_bytes)

    def warmup(player_id: int):
        """Late-joiner handshake: block on one whole-BE panorama.

        Furion-style clients need the next grid point's panorama before
        they can display anything; streaming it through the shared link
        (with any scripted server stall) is the whole warm-up.
        """
        started_ms = sim.now
        if not supervisor.poll(player_id):
            return
        sample = session.position_at(player_id, sim.now)
        grid_point = session.world.grid.snap(sample.position)
        frame_bytes = size_model.sample(grid_point)
        stall_ms = session.server_stall_ms(sim.now)
        if stall_ms > 0:
            yield stall_ms
        yield session.link.transfer(frame_bytes, tag="be")
        if not supervisor.poll(player_id):
            return
        if supervisor.activate(player_id) and tracer.enabled:
            tracer.complete(
                "warmup", player_id, "net", started_ms, sim.now - started_ms,
                cat="membership", args={"bytes": frame_bytes},
            )

    def client(player_id: int):
        cache = caches[player_id]
        controller = abr[player_id] if abr is not None else None
        last_frame_ms = None  # when the displayed panorama last refreshed
        frame_index = 0
        if supervisor is not None and supervisor.state(player_id) == WARMING:
            yield from warmup(player_id)
            if supervisor.state(player_id) != ACTIVE:
                return
        while sim.now < session.horizon_ms:
            if supervisor is not None and not supervisor.poll(player_id):
                return  # left, crashed, or evicted: no silent rejoin
            resume = session.outage_resume_ms(player_id, sim.now)
            if resume is not None and resume > sim.now:
                outage_start = sim.now
                yield resume - sim.now  # disconnected: no frames produced
                if tracer.enabled:
                    session.trace_outage(player_id, outage_start, sim.now)
                continue
            t0 = sim.now
            if controller is not None:
                controller.on_frame(t0)
            sample = session.position_at(player_id, t0)
            grid_point = session.world.grid.snap(sample.position)
            snapped = session.world.grid.to_world(grid_point)

            hit = None
            if cache is not None:
                hit = cache.lookup(
                    grid_point, snapped, _WHOLE_LEAF, frozenset(), 0.0, t0
                )
            frame_bytes = 0
            transfer_ms = 0.0
            dropped = False
            stale_age_ms = None
            if hit is None:
                frame_bytes = size_model.sample(grid_point)
                if controller is not None:
                    frame_bytes = controller.scaled_bytes(frame_bytes)
                if (
                    controller is not None
                    and last_frame_ms is not None
                    and controller.should_drop(t0, frame_bytes)
                ):
                    # App-layer drop: re-display the previously decoded
                    # panorama instead of issuing a doomed transfer.
                    dropped = True
                    stale_age_ms = t0 - last_frame_ms
                    frame_bytes = 0
                else:
                    stall_ms = session.server_stall_ms(t0)
                    if stall_ms > 0:
                        yield stall_ms  # scripted slow server response
                    transfer_ms = stall_ms
                    transfer_ms += yield session.link.transfer(frame_bytes, tag="be")
                    if controller is not None:
                        controller.observe_transfer(
                            sim.now, frame_bytes, transfer_ms - stall_ms
                        )
                    last_frame_ms = sim.now
                    if cache is not None:
                        cache.insert(
                            CachedFrame(
                                grid_point=grid_point,
                                position=snapped,
                                leaf=_WHOLE_LEAF,
                                near_ids=frozenset(),
                                payload=None,
                                size_bytes=frame_bytes,
                                inserted_ms=t0,
                                last_used_ms=t0,
                                origin_player=player_id,
                            )
                        )
            else:
                last_frame_ms = t0
            session.pun.tick()
            timings = PipelineTimings(
                render_fi_ms=session.fi_ms,
                render_near_be_ms=0.0,
                decode_ms=session.cost_model.decode_ms(3840, 2160),
                prefetch_ms=transfer_ms,
                sync_ms=session.pun.sync_latency_ms(),
                merge_ms=config.device.merge_ms,
                setup_ms=config.device.setup_ms,
            )
            interval = frame_interval_ms(timings)
            record = FrameRecord(
                t_ms=t0 + interval,
                interval_ms=interval,
                render_ms=timings.render_ms - timings.setup_ms + timings.merge_ms,
                responsiveness_ms=timings.split_render_ms() + SENSOR_SCANOUT_MS,
                net_delay_ms=transfer_ms,
                frame_bytes=frame_bytes,
                cache_hit=(hit is not None) if cache is not None else None,
                stale_age_ms=stale_age_ms,
                dropped=dropped,
            )
            session.collectors[player_id].add(record)
            if session.hub.enabled:
                session.meter_frame(player_id, record)
            if supervisor is not None:
                supervisor.note_frame(player_id, t0 + interval)
            if tracer.enabled:
                outcome = None
                if dropped:
                    outcome = "drop"
                elif cache is not None:
                    outcome = "hit" if hit is not None else "fetch"
                session.trace_pipeline_frame(
                    player_id, frame_index, t0, timings, interval,
                    frame_bytes=frame_bytes, cache=outcome,
                )
            frame_index += 1
            remaining = interval - transfer_ms
            # Minimum 1-tick yield: never re-enter the loop at the same
            # simulated instant when the transfer ate the whole interval.
            yield remaining if remaining > 0 else MIN_YIELD_MS

    if supervisor is None:
        for player_id in range(n_players):
            sim.spawn(client(player_id))
    else:
        # Whole-BE systems fetch a fresh panorama every display interval,
        # so the Constraint-2 BE term is simply 60 Hz x the mean wire
        # size — which is why Multi-Furion joins are usually rejected on
        # links that admit Coterie joins comfortably.
        whole_kbps = 60.0 * size_model.mean_bytes * 8.0 / 1000.0
        admission = AdmissionController(
            budget=BandwidthBudget(
                capacity_mbps=config.wifi_mbps,
                utilization_bound=supervisor.config.utilization_bound,
            ),
            be_kbps_for=lambda slot: whole_kbps,
            fi_kbps_for=session.pun.expected_bandwidth_kbps,
            max_players=supervisor.config.max_players,
        )

        def spawn_client(slot, rejoining):
            if rejoining and caches[slot] is not None:
                caches[slot].clear()
            sim.spawn(client(slot))

        supervisor.start(spawn_client, admission)
    sim.run_until(session.horizon_ms)

    cpu_model = CpuModel()
    be_mbps = session.link.bandwidth_mbps("be", session.horizon_ms)
    cpu = [
        cpu_model.utilization(
            gpu_utilization=session.collectors[p].gpu_utilization(),
            net_mbps=be_mbps / n_players,
            decoding=True,
            cache_enabled=exact_cache,
            n_players=n_players,
        )
        if session.collectors[p].records
        else 0.0
        for p in range(session.total_slots)
    ]
    name = "multi_furion_cache" if exact_cache else "multi_furion"
    return session.finish(name, cpu)
