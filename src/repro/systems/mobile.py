"""The Mobile baseline: everything rendered on the phone (§2.2).

No network involvement at all — the phone renders FI plus the entire BE
every frame, which is why commodity phones cap out at 24-27 FPS on the
study's 4K apps (Table 1) with the GPU pinned at ~90-99 %.
"""

from __future__ import annotations

from ..metrics import CpuModel, FrameRecord
from ..world.games import GameWorld
from .base import SENSOR_SCANOUT_MS, RunResult, Session, SessionConfig


def run_mobile(world: GameWorld, n_players: int, config: SessionConfig) -> RunResult:
    """Simulate N players on the local-rendering baseline."""
    if config.churn is not None:
        raise ValueError(
            "the mobile baseline has no network session to supervise; "
            "churn requires coterie, multi_furion, or thin_client"
        )
    session = Session(world, n_players, config)
    sim = session.sim

    tracer = session.tracer

    def client(player_id: int):
        frame_index = 0
        while sim.now < session.horizon_ms:
            t0 = sim.now
            sample = session.position_at(player_id, t0)
            whole_ms = session.cost_model.whole_be_ms(
                session.world.scene, sample.position
            )
            render_ms = session.cost_model.frame_ms(session.fi_ms, whole_ms)
            # Rendering IS the frame interval: the GPU is the bottleneck and
            # the display shows frames as they complete (sub-60 FPS).
            interval = max(render_ms, 1000.0 / 60.0)
            session.pun.tick()
            record = FrameRecord(
                t_ms=t0 + interval,
                interval_ms=interval,
                render_ms=render_ms,
                responsiveness_ms=render_ms + SENSOR_SCANOUT_MS,
            )
            session.collectors[player_id].add(record)
            if session.hub.enabled:
                session.meter_frame(player_id, record)
            if tracer.enabled:
                session.trace_sequential_frame(
                    player_id, frame_index, t0, (("render", render_ms),),
                    interval,
                )
            frame_index += 1
            yield interval

    for player_id in range(n_players):
        sim.spawn(client(player_id))
    sim.run_until(session.horizon_ms)

    cpu_model = CpuModel()
    cpu = [
        cpu_model.utilization(
            gpu_utilization=session.collectors[p].gpu_utilization(),
            n_players=n_players,
        )
        for p in range(n_players)
    ]
    return session.finish("mobile", cpu)
