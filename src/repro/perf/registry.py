"""Process-wide performance registry: scoped timers and counters.

Every hot stage of the offline pipeline (rasterization, encoding, SSIM,
dist-thresh search, preprocessing drivers) reports into one module-level
:class:`PerfRegistry` so any entry point — the CLI, a benchmark, a test —
can ask "where did the time go" without threading profiler objects through
a dozen call signatures.  The registry is deliberately tiny: a timer is a
``perf_counter`` pair plus a dict update behind a lock (~1 µs per scope,
invisible next to a 300 ms panorama render).

Worker processes of the parallel preprocessing driver keep their own
registry (module state is per-process) and ship a :meth:`snapshot` back
with each completed chunk; the parent merges them, so ``perf.report()``
covers work done on every core.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional


@dataclass
class StageStats:
    """Accumulated timing for one named stage."""

    calls: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def add(self, seconds: float, calls: int = 1) -> None:
        """Fold one measured duration (covering ``calls`` calls) in."""
        if seconds < 0 or calls < 1:
            raise ValueError("invalid timing sample")
        self.calls += calls
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    @property
    def mean_ms(self) -> float:
        return 1000.0 * self.total_s / self.calls if self.calls else 0.0


@dataclass
class PerfRegistry:
    """Thread-safe collection of stage timings and event counters."""

    _stages: Dict[str, StageStats] = field(default_factory=dict)
    _counters: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @contextmanager
    def timed(self, stage: str) -> Iterator[None]:
        """Time a ``with`` block (or, as a decorator context, a call)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(stage, time.perf_counter() - t0)

    def add_time(self, stage: str, seconds: float, calls: int = 1) -> None:
        """Record an externally measured duration for ``stage``."""
        with self._lock:
            stats = self._stages.get(stage)
            if stats is None:
                stats = self._stages[stage] = StageStats()
            stats.add(seconds, calls)

    def count(self, name: str, n: int = 1) -> None:
        """Bump an event counter (cache hits, probes, renders, ...)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stage(self, name: str) -> Optional[StageStats]:
        """A copy of one stage's stats, or None if never recorded."""
        with self._lock:
            stats = self._stages.get(name)
            return (
                StageStats(stats.calls, stats.total_s, stats.min_s, stats.max_s)
                if stats is not None
                else None
            )

    def counter(self, name: str) -> int:
        """Current value of an event counter (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def stage_names(self) -> Dict[str, float]:
        """Stage -> total seconds, for quick assertions."""
        with self._lock:
            return {name: stats.total_s for name, stats in self._stages.items()}

    def snapshot(self) -> Dict[str, dict]:
        """Picklable dump for shipping across process boundaries."""
        with self._lock:
            return {
                "stages": {
                    name: {
                        "calls": stats.calls,
                        "total_s": stats.total_s,
                        "min_s": stats.min_s,
                        "max_s": stats.max_s,
                    }
                    for name, stats in self._stages.items()
                },
                "counters": dict(self._counters),
            }

    def merge(self, snapshot: Mapping[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The whole merge happens under one lock acquisition so a
        concurrent :meth:`snapshot` (e.g. the parent registry shipping
        its own state while a worker chunk lands) can never observe a
        half-merged registry — some stages updated, others not.
        """
        with self._lock:
            for name, payload in snapshot.get("stages", {}).items():
                stats = self._stages.get(name)
                if stats is None:
                    stats = self._stages[name] = StageStats()
                stats.calls += payload["calls"]
                stats.total_s += payload["total_s"]
                stats.min_s = min(stats.min_s, payload["min_s"])
                stats.max_s = max(stats.max_s, payload["max_s"])
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value

    def reset(self) -> None:
        """Clear all stages and counters (tests and worker chunks)."""
        with self._lock:
            self._stages.clear()
            self._counters.clear()

    def report(self, sort: str = "total") -> str:
        """Human-readable profile table, slowest stages first."""
        if sort not in ("total", "calls", "name"):
            raise ValueError("sort must be 'total', 'calls', or 'name'")
        with self._lock:
            rows = [
                (name, stats.calls, stats.total_s, stats.mean_ms)
                for name, stats in self._stages.items()
            ]
            counters = sorted(self._counters.items())
        if sort == "total":
            rows.sort(key=lambda r: -r[2])
        elif sort == "calls":
            rows.sort(key=lambda r: -r[1])
        else:
            rows.sort(key=lambda r: r[0])
        # Name column sized to the longest name so long stage names do
        # not shear the numeric columns out of alignment.
        width = max(
            24,
            *(len(r[0]) for r in rows),
            *(len(name) for name, _ in counters),
        ) if rows or counters else 24
        lines = [f"{'stage':{width}} {'calls':>8} {'total s':>10} {'mean ms':>10}"]
        for name, calls, total_s, mean_ms in rows:
            lines.append(
                f"{name:{width}} {calls:>8} {total_s:>10.3f} {mean_ms:>10.3f}"
            )
        if counters:
            lines.append(f"{'counter':{width}} {'value':>8}")
            for name, value in counters:
                lines.append(f"{name:{width}} {value:>8}")
        return "\n".join(lines)
