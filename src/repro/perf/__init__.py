"""Lightweight performance instrumentation for the offline pipeline.

Usage from any module::

    from .. import perf   # or: from repro import perf

    with perf.timed("ssim"):
        ...

    perf.count("panorama_store.hit")
    print(perf.report())

All helpers operate on one process-wide :data:`REGISTRY`; worker processes
merge their snapshots into the parent's registry via :func:`merge`.
"""

from __future__ import annotations

from .registry import PerfRegistry, StageStats

# The process-wide registry every repro module reports into.
REGISTRY = PerfRegistry()

from .arena import FrameArena  # noqa: E402  (needs REGISTRY bound first)

timed = REGISTRY.timed
add_time = REGISTRY.add_time
count = REGISTRY.count
counter = REGISTRY.counter
stage = REGISTRY.stage
stage_names = REGISTRY.stage_names
snapshot = REGISTRY.snapshot
merge = REGISTRY.merge
reset = REGISTRY.reset
report = REGISTRY.report

__all__ = [
    "FrameArena",
    "PerfRegistry",
    "REGISTRY",
    "StageStats",
    "add_time",
    "count",
    "counter",
    "merge",
    "report",
    "reset",
    "snapshot",
    "stage",
    "stage_names",
    "timed",
]
