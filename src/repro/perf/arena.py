"""Preallocated buffer arena for the online frame loop.

The batched online path (decode → cache lookup → SSIM → merge) runs the
same stacked numpy passes every display tick.  Allocating the stacks
fresh each tick would put the allocator — not the kernels — on the hot
path, so the loop draws its scratch and tile buffers from a
:class:`FrameArena`: buffers are pooled by ``(shape, dtype)``, handed
out in order within an epoch, and recycled wholesale by
:meth:`FrameArena.reset` at the end of each tick.  After the first few
epochs warm the pools, the steady-state loop performs **zero** large
per-frame allocations.

Two rules keep this safe:

* a buffer taken from the arena is valid only until the next
  :meth:`~FrameArena.reset`; anything that outlives the tick (decoded
  frames admitted into the :class:`~repro.core.cache.FrameCache`) must
  own its memory instead;
* buffers are returned *uncleared* — callers overwrite every element
  (all users here write the full buffer before reading it).

Pool behaviour is observable through the process-wide :mod:`repro.perf`
counters ``arena.hits`` (a take served from the pool) and
``arena.growths`` (a take that had to allocate), plus the instance's
:attr:`~FrameArena.reuse_ratio` for per-run reporting.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from . import REGISTRY


class FrameArena:
    """An epoch-scoped pool of reusable ndarrays keyed by shape and dtype."""

    def __init__(self) -> None:
        self._pools: Dict[Tuple[tuple, str], List[np.ndarray]] = {}
        self._cursors: Dict[Tuple[tuple, str], int] = {}
        self.hits = 0
        self.growths = 0
        self.epochs = 0

    def take(self, shape, dtype=np.float64) -> np.ndarray:
        """A buffer of ``shape``/``dtype``, recycled from earlier epochs.

        Contents are undefined; the caller must overwrite before reading.
        The buffer belongs to the arena and is reissued after the next
        :meth:`reset`.
        """
        key = (tuple(shape), np.dtype(dtype).str)
        pool = self._pools.setdefault(key, [])
        cursor = self._cursors.get(key, 0)
        self._cursors[key] = cursor + 1
        if cursor < len(pool):
            self.hits += 1
            REGISTRY.count("arena.hits")
            return pool[cursor]
        buffer = np.empty(key[0], dtype=dtype)
        pool.append(buffer)
        self.growths += 1
        REGISTRY.count("arena.growths")
        return buffer

    def reset(self) -> None:
        """End the epoch: every pooled buffer becomes reusable again."""
        for key in self._cursors:
            self._cursors[key] = 0
        self.epochs += 1

    def clear(self) -> None:
        """Drop every pooled buffer (counters are kept)."""
        self._pools.clear()
        self._cursors.clear()

    @property
    def takes(self) -> int:
        return self.hits + self.growths

    @property
    def reuse_ratio(self) -> float:
        """Fraction of takes served without allocating."""
        if not self.takes:
            return 0.0
        return self.hits / self.takes

    @property
    def pooled_bytes(self) -> int:
        """Total bytes held across all pools."""
        return sum(
            buffer.nbytes for pool in self._pools.values() for buffer in pool
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameArena(pools={len(self._pools)}, takes={self.takes}, "
            f"reuse={self.reuse_ratio:.2f}, bytes={self.pooled_bytes})"
        )
