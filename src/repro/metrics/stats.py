"""Small statistics helpers shared by the evaluation harness.

Edge-case contract: every aggregate in this module (:func:`mean`,
:func:`percentile`, :func:`percentiles`, :func:`tail_summary`,
:func:`cdf_points`, :func:`histogram`) raises ``ValueError`` with the
message ``"<fn>: empty input sequence"`` when given no values — there
is no NaN/sentinel path, so a silently empty series can never masquerade
as a zero in a report.  Emptiness is tested with ``len()``, which works
for lists and numpy arrays alike (``if not values:`` is ambiguous for
arrays).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def _require_nonempty(values: Sequence[float], fn: str) -> None:
    """The module-wide empty-input contract (see module docstring)."""
    if len(values) == 0:
        raise ValueError(f"{fn}: empty input sequence")


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (rejects empty input)."""
    _require_nonempty(values, "mean")
    return float(np.mean(values))


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (q in [0, 100]; rejects empty input)."""
    _require_nonempty(values, "percentile")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    return float(np.percentile(values, q))


def percentiles(
    values: Sequence[float], qs: Sequence[float]
) -> List[float]:
    """Several percentiles in one pass (one sort instead of ``len(qs)``)."""
    _require_nonempty(values, "percentiles")
    if any(not 0.0 <= q <= 100.0 for q in qs):
        raise ValueError("every q must be in [0, 100]")
    return [float(v) for v in np.percentile(values, list(qs))]


def tail_summary(values: Sequence[float]) -> Tuple[float, float, float]:
    """(p50, p95, p99) — the tail triple the QoE tables report.

    Tail latency, not the mean, is what a deadline-driven display feels:
    one p99 frame interval of 50 ms is a visible hitch that a 16.7 ms
    mean happily hides.  Rejects empty input (module contract), with
    the ``tail_summary`` name in the message rather than the inner
    helper's.
    """
    _require_nonempty(values, "tail_summary")
    p50, p95, p99 = percentiles(values, (50.0, 95.0, 99.0))
    return p50, p95, p99


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, fraction<=value) pairs, for plotting."""
    _require_nonempty(values, "cdf_points")
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def running_average(values: Sequence[float], window: int) -> List[float]:
    """Trailing-window moving average (shorter prefix windows included)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    out = []
    acc = 0.0
    for i, v in enumerate(values):
        acc += v
        if i >= window:
            acc -= values[i - window]
        out.append(acc / min(i + 1, window))
    return out


def histogram(values: Sequence[float], edges: Sequence[float]) -> List[int]:
    """Counts per [edges[i], edges[i+1]) bin; last bin closed on the right.

    Rejects empty input like every other aggregate here (np.histogram
    would quietly return all-zero counts, which a report cannot tell
    apart from "all values fell outside the edges").
    """
    _require_nonempty(values, "histogram")
    if len(edges) < 2:
        raise ValueError("need at least 2 bin edges")
    counts, _ = np.histogram(np.asarray(values, dtype=float), bins=np.asarray(edges))
    return counts.tolist()
