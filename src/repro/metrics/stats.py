"""Small statistics helpers shared by the evaluation harness."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (rejects empty input)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return float(np.mean(values))


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (q in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    return float(np.percentile(values, q))


def percentiles(
    values: Sequence[float], qs: Sequence[float]
) -> List[float]:
    """Several percentiles in one pass (one sort instead of ``len(qs)``)."""
    if not values:
        raise ValueError("percentiles of empty sequence")
    if any(not 0.0 <= q <= 100.0 for q in qs):
        raise ValueError("every q must be in [0, 100]")
    return [float(v) for v in np.percentile(values, list(qs))]


def tail_summary(values: Sequence[float]) -> Tuple[float, float, float]:
    """(p50, p95, p99) — the tail triple the QoE tables report.

    Tail latency, not the mean, is what a deadline-driven display feels:
    one p99 frame interval of 50 ms is a visible hitch that a 16.7 ms
    mean happily hides.
    """
    p50, p95, p99 = percentiles(values, (50.0, 95.0, 99.0))
    return p50, p95, p99


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, fraction<=value) pairs, for plotting."""
    if not values:
        raise ValueError("cdf of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def running_average(values: Sequence[float], window: int) -> List[float]:
    """Trailing-window moving average (shorter prefix windows included)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    out = []
    acc = 0.0
    for i, v in enumerate(values):
        acc += v
        if i >= window:
            acc -= values[i - window]
        out.append(acc / min(i + 1, window))
    return out


def histogram(values: Sequence[float], edges: Sequence[float]) -> List[int]:
    """Counts per [edges[i], edges[i+1]) bin; last bin closed on the right."""
    if len(edges) < 2:
        raise ValueError("need at least 2 bin edges")
    counts, _ = np.histogram(np.asarray(values, dtype=float), bins=np.asarray(edges))
    return counts.tolist()
