"""QoE scoring: the user-study MOS model (Table 10).

Coterie may "increase the discontinuity of adjacent frames" because a
reused far-BE frame is eventually replaced by a freshly fetched one; the
paper runs a 12-participant study scoring the difference from 1 (very
annoying) to 5 (imperceptible).  Participants "observed slight stuttering
at locations where the cutoff radius was small" — i.e. where the switch
between consecutive far-BE sources is least similar.

The model: each far-BE *switch* during a replay has a measurable jump
(1 - SSIM between the outgoing and incoming far-BE frames); a participant
with an individual sensitivity maps the worst jump of the trace to a mean
opinion score via perceptual thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

MOS_LABELS = {
    1: "very annoying",
    2: "annoying",
    3: "slightly annoying",
    4: "perceptible but not annoying",
    5: "imperceptible",
}

# Perceived-jump thresholds separating MOS bands (calibrated at the
# reproduction's render resolution so reuse at the SSIM-0.9 bar grades
# "perceptible but not annoying", matching the §7.4 outcome).
_THRESHOLDS = (0.04, 0.09, 0.15, 0.25)


def mos_for_jump(perceived_jump: float) -> int:
    """Map a perceived discontinuity magnitude to a 1-5 opinion score."""
    if perceived_jump < 0:
        raise ValueError("perceived_jump must be non-negative")
    for score, threshold in zip((5, 4, 3, 2), _THRESHOLDS):
        if perceived_jump < threshold:
            return score
    return 1


def trace_jumps(switch_ssims: Sequence[float]) -> List[float]:
    """Discontinuity magnitudes of a trace's far-BE switches."""
    jumps = []
    for value in switch_ssims:
        if not -1.0 <= value <= 1.0:
            raise ValueError(f"SSIM {value} out of range")
        jumps.append(max(0.0, 1.0 - value))
    return jumps


@dataclass(frozen=True)
class UserStudyResult:
    """Score distribution over all (participant x trace) gradings."""

    percentages: Dict[int, float]  # score -> percent of gradings

    @property
    def mean_score(self) -> float:
        return sum(score * pct / 100.0 for score, pct in self.percentages.items())


def run_user_study(
    switch_ssims_per_trace: Sequence[Sequence[float]],
    n_participants: int = 12,
    seed: int = 0,
) -> UserStudyResult:
    """Simulate the §7.4 study: every participant grades every trace.

    Each participant has a sensitivity drawn once (how strongly the same
    physical jump registers).  A trace's grade blends its *typical*
    discontinuity (the median switch jump — what a 20-second replay feels
    like) with its tail (the 90th-percentile jump — the occasional visible
    stutter the paper's volunteers reported at small-cutoff locations).
    """
    if not switch_ssims_per_trace:
        raise ValueError("need at least one trace")
    if n_participants < 1:
        raise ValueError("n_participants must be >= 1")
    rng = np.random.default_rng(seed)
    sensitivities = np.clip(rng.normal(1.0, 0.3, size=n_participants), 0.3, 2.0)
    counts = {score: 0 for score in MOS_LABELS}
    for sensitivity in sensitivities:
        for switch_ssims in switch_ssims_per_trace:
            jumps = trace_jumps(switch_ssims)
            if jumps:
                perceived = 0.7 * float(np.median(jumps)) + 0.3 * float(
                    np.percentile(jumps, 90)
                )
            else:
                perceived = 0.0
            score = mos_for_jump(perceived * float(sensitivity))
            counts[score] += 1
    total = sum(counts.values())
    percentages = {score: 100.0 * n / total for score, n in counts.items()}
    return UserStudyResult(percentages=percentages)
