"""SoC thermal model (Fig. 12's temperature row).

A first-order RC model: the SoC temperature relaxes toward
``ambient + P * R_thermal`` with time constant tau, so it "increases
gradually" over a session and plateaus — the paper's requirement is that it
"stays under the thermal limit of Pixel 2, i.e., 52 Celsius" so the system
can run without throttling.
"""

from __future__ import annotations

from dataclasses import dataclass

# Pixel 2's throttle trigger from /vendor/etc/thermal-engine.conf (§7.3).
PIXEL2_THERMAL_LIMIT_C = 52.0


@dataclass
class ThermalModel:
    """First-order thermal RC integrator."""

    ambient_c: float = 27.0
    r_thermal_c_per_w: float = 5.0  # steady-state rise per watt
    tau_s: float = 420.0  # thermal time constant
    temperature_c: float = 27.0

    def __post_init__(self) -> None:
        if self.r_thermal_c_per_w <= 0 or self.tau_s <= 0:
            raise ValueError("thermal parameters must be positive")

    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium temperature under a constant draw."""
        if power_w < 0:
            raise ValueError("power_w must be non-negative")
        return self.ambient_c + power_w * self.r_thermal_c_per_w

    def step(self, power_w: float, dt_s: float) -> float:
        """Advance the SoC temperature by ``dt_s`` under ``power_w`` draw."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        target = self.steady_state_c(power_w)
        import math

        alpha = 1.0 - math.exp(-dt_s / self.tau_s)
        self.temperature_c += (target - self.temperature_c) * alpha
        return self.temperature_c

    def throttled(self, limit_c: float = PIXEL2_THERMAL_LIMIT_C) -> bool:
        """Whether the SoC has reached the throttle trigger."""
        return self.temperature_c >= limit_c
