"""Resource time series: Fig. 12's CPU/GPU/temperature/power traces.

Given a session's steady utilizations, integrate the thermal model over a
long horizon and emit the per-minute series the paper plots for 30-minute
runs, plus the battery projection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .power import BATTERY_WH, PowerModel
from .thermal import PIXEL2_THERMAL_LIMIT_C, ThermalModel


@dataclass(frozen=True)
class TimelinePoint:
    """One sampled instant of the session."""

    t_s: float
    cpu: float
    gpu: float
    power_w: float
    temperature_c: float
    battery_fraction: float


@dataclass
class ResourceTimeline:
    """The full series plus its summary judgments."""

    points: List[TimelinePoint]

    @property
    def duration_s(self) -> float:
        return self.points[-1].t_s if self.points else 0.0

    @property
    def peak_temperature_c(self) -> float:
        return max(p.temperature_c for p in self.points)

    @property
    def mean_power_w(self) -> float:
        return sum(p.power_w for p in self.points) / len(self.points)

    def ever_throttled(self, limit_c: float = PIXEL2_THERMAL_LIMIT_C) -> bool:
        """Whether the SoC crossed the throttle trigger at any point."""
        return self.peak_temperature_c >= limit_c

    def battery_exhausted(self) -> bool:
        """Whether the battery ran flat before the session ended."""
        return self.points[-1].battery_fraction <= 0.0


def build_timeline(
    cpu: float,
    gpu: float,
    net_mbps: float,
    duration_s: float = 1800.0,
    sample_s: float = 60.0,
    power_model: PowerModel = PowerModel(),
    thermal_model: ThermalModel = None,
    battery_wh: float = BATTERY_WH,
) -> ResourceTimeline:
    """Integrate a steady workload into a resource timeline.

    The paper's Fig. 12 loads are steady (Coterie's per-client work is
    player-count independent), so utilizations are constant and only the
    thermal state and battery evolve.
    """
    if duration_s <= 0 or sample_s <= 0:
        raise ValueError("duration_s and sample_s must be positive")
    if not 0.0 <= cpu <= 1.0 or not 0.0 <= gpu <= 1.0:
        raise ValueError("cpu and gpu must be in [0, 1]")
    thermal = thermal_model if thermal_model is not None else ThermalModel()
    power = power_model.draw_w(cpu, gpu, net_mbps)
    points: List[TimelinePoint] = []
    consumed_wh = 0.0
    t = 0.0
    while t <= duration_s + 1e-9:
        battery_fraction = max(0.0, 1.0 - consumed_wh / battery_wh)
        points.append(
            TimelinePoint(
                t_s=t,
                cpu=cpu,
                gpu=gpu,
                power_w=power,
                temperature_c=thermal.temperature_c,
                battery_fraction=battery_fraction,
            )
        )
        thermal.step(power, dt_s=sample_s)
        consumed_wh += power * sample_s / 3600.0
        t += sample_s
    return ResourceTimeline(points=points)
