"""Telemetry: per-frame metrics, CPU/power/thermal models, MOS scoring."""

from .collector import (
    TARGET_FRAME_MS,
    FrameRecord,
    MetricsCollector,
    ResilienceStats,
    SessionMetrics,
)
from .power import BATTERY_WH, PowerModel
from .qoe import (
    MOS_LABELS,
    UserStudyResult,
    mos_for_jump,
    run_user_study,
    trace_jumps,
)
from .stats import (
    cdf_points,
    histogram,
    mean,
    percentile,
    percentiles,
    running_average,
    tail_summary,
)
from .thermal import PIXEL2_THERMAL_LIMIT_C, ThermalModel
from .timeline import ResourceTimeline, TimelinePoint, build_timeline
from .utilization import CpuModel

__all__ = [
    "BATTERY_WH",
    "CpuModel",
    "FrameRecord",
    "MOS_LABELS",
    "MetricsCollector",
    "PIXEL2_THERMAL_LIMIT_C",
    "PowerModel",
    "ResilienceStats",
    "ResourceTimeline",
    "TimelinePoint",
    "SessionMetrics",
    "TARGET_FRAME_MS",
    "ThermalModel",
    "UserStudyResult",
    "cdf_points",
    "histogram",
    "mean",
    "mos_for_jump",
    "percentile",
    "percentiles",
    "run_user_study",
    "build_timeline",
    "running_average",
    "tail_summary",
    "trace_jumps",
]
