"""Per-frame metric collection for a client session.

Each rendering interval the session records a :class:`FrameRecord`; the
collector aggregates them into the quantities the paper's tables report:
FPS, inter-frame latency, responsiveness (motion-to-photon), per-frame
sizes, network delay, and CPU/GPU utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .stats import mean, tail_summary

TARGET_FRAME_MS = 1000.0 / 60.0


@dataclass(frozen=True)
class FrameRecord:
    """Everything measured about one displayed frame."""

    t_ms: float  # display timestamp
    interval_ms: float  # time since the previous displayed frame
    render_ms: float  # GPU render time spent this frame
    responsiveness_ms: float  # motion-to-photon latency
    net_delay_ms: float = 0.0  # network delay on this frame's critical path
    frame_bytes: int = 0  # wire size of any frame fetched this interval
    cache_hit: Optional[bool] = None  # far-BE cache outcome (None: no cache)
    displayed_ssim: Optional[float] = None  # vs. reference, when computed
    deadline_missed: bool = False  # prefetch blew its per-frame deadline
    stale_age_ms: Optional[float] = None  # age of a stale fallback frame
    # The ABR drop policy chose to skip this frame's transfer (controlled
    # degradation; distinct from deadline_missed, which is reactive).
    dropped: bool = False

    def __post_init__(self) -> None:
        if self.interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if self.render_ms < 0 or self.responsiveness_ms < 0 or self.net_delay_ms < 0:
            raise ValueError("latencies must be non-negative")
        if self.stale_age_ms is not None and self.stale_age_ms < 0:
            raise ValueError("stale_age_ms must be non-negative")


@dataclass
class ResilienceStats:
    """Per-player degraded-mode counters not tied to a single frame."""

    fetch_retries: int = 0  # background re-issues after a fetch timeout
    fetches_abandoned: int = 0  # fetches given up after the retry cap
    rewarm_fetches: int = 0  # cache re-warms after a reconnect
    # Speculation outcomes (repro.predict); all zero unless prediction ran.
    spec_predictions: int = 0  # pose forecasts issued
    spec_prefetches: int = 0  # speculative fetches launched
    spec_confirms: int = 0  # speculative entries validated and promoted
    spec_mispredictions: int = 0  # forecasts whose error beat their radius
    spec_rollbacks: int = 0  # corrupt speculative entries rolled back
    spec_expired: int = 0  # speculative entries that aged out unconfirmed
    # Sync-validation outcomes (repro.session.sync); zero without it.
    desync_alarms: int = 0  # cross-peer state-hash mismatches raised
    desync_detection_ms: float = 0.0  # worst injection -> alarm latency
    resyncs: int = 0  # authoritative re-warms triggered by alarms
    resync_recovery_ms: float = 0.0  # alarm -> clean-round time, summed


@dataclass
class SessionMetrics:
    """Aggregated per-player results (one row of Table 1/7/8)."""

    fps: float
    inter_frame_ms: float
    responsiveness_ms: float
    net_delay_ms: float
    frame_kb: float
    gpu_utilization: float
    cpu_utilization: float
    cache_hit_ratio: Optional[float]
    mean_ssim: Optional[float]
    frames: int
    # Tail latencies (p50 tracks the mean on a healthy run; p95/p99 are
    # where deadline misses and fault episodes actually show up).
    p50_inter_frame_ms: float = 0.0
    p95_inter_frame_ms: float = 0.0
    p99_inter_frame_ms: float = 0.0
    p95_responsiveness_ms: float = 0.0
    p99_responsiveness_ms: float = 0.0
    # Degraded-mode outcomes; all zero on a clean run.
    deadline_miss_rate: float = 0.0
    stale_frames: int = 0
    mean_stale_age_ms: float = 0.0
    max_stale_age_ms: float = 0.0
    fetch_retries: int = 0
    fetches_abandoned: int = 0
    rewarm_fetches: int = 0
    # Membership outcomes (session supervision); all zero/one on a
    # churn-free run so clean-run equality is preserved bit-for-bit.
    join_latency_ms: float = 0.0  # join request -> ACTIVE, summed
    warmup_ms: float = 0.0  # admission -> ACTIVE, summed
    epochs_survived: int = 0  # membership epochs spent ACTIVE
    evictions: int = 0  # failure-detector evictions of this slot
    incarnations: int = 0  # admissions (0 when supervision is off)
    # Adaptive-streaming outcomes (repro.adapt); all zero/empty when no
    # controller ran, so clean-run equality is preserved bit-for-bit.
    drop_rate: float = 0.0  # ABR-dropped fraction of frames
    abr_steps_down: int = 0  # CRF ladder steps toward lower quality
    abr_steps_up: int = 0  # CRF ladder steps back toward base quality
    abr_drops: int = 0  # transfers skipped by the drop policy
    abr_mean_crf: float = 0.0  # time-weighted mean CRF over the session
    abr_degraded_ms: float = 0.0  # time spent below base quality
    # (t_ms, crf) at every ladder change, starting at (0, base_crf).
    abr_crf_timeline: tuple = ()
    # Speculation outcomes (repro.predict); all zero when prediction is
    # off, so clean-run equality is preserved bit-for-bit.
    spec_predictions: int = 0
    spec_prefetches: int = 0
    spec_confirms: int = 0
    spec_mispredictions: int = 0
    spec_rollbacks: int = 0
    spec_expired: int = 0
    # Sync-validation outcomes (repro.session.sync); zero without it.
    desync_alarms: int = 0
    desync_detection_ms: float = 0.0
    resyncs: int = 0
    resync_recovery_ms: float = 0.0


class MetricsCollector:
    """Accumulates frame records and computes session aggregates."""

    def __init__(self) -> None:
        self.records: List[FrameRecord] = []
        self.resilience = ResilienceStats()

    def add(self, record: FrameRecord) -> None:
        """Record one displayed frame."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------

    def fps(self) -> float:
        """Average frame rate, capped at the 60 Hz display refresh."""
        if not self.records:
            raise ValueError("no frames recorded")
        avg_interval = mean([r.interval_ms for r in self.records])
        return min(60.0, 1000.0 / avg_interval)

    def inter_frame_ms(self) -> float:
        """Mean display interval."""
        return mean([r.interval_ms for r in self.records])

    def responsiveness_ms(self) -> float:
        """Mean motion-to-photon latency."""
        return mean([r.responsiveness_ms for r in self.records])

    def net_delay_ms(self) -> float:
        """Average network delay over frames that actually used the net."""
        delays = [r.net_delay_ms for r in self.records if r.frame_bytes > 0]
        if not delays:
            return 0.0
        return mean(delays)

    def mean_frame_kb(self) -> float:
        """Mean wire size of fetched frames, in kilobytes."""
        sizes = [r.frame_bytes for r in self.records if r.frame_bytes > 0]
        if not sizes:
            return 0.0
        return mean(sizes) / 1000.0

    def gpu_utilization(self) -> float:
        """GPU busy fraction over the session."""
        if not self.records:
            raise ValueError("no frames recorded")
        busy = sum(r.render_ms for r in self.records)
        horizon = sum(r.interval_ms for r in self.records)
        return min(1.0, busy / horizon)

    def cache_hit_ratio(self) -> Optional[float]:
        """Cache hit ratio, or None when no cache was in play."""
        outcomes = [r.cache_hit for r in self.records if r.cache_hit is not None]
        if not outcomes:
            return None
        return sum(outcomes) / len(outcomes)

    def mean_ssim(self) -> Optional[float]:
        """Mean displayed-frame SSIM over sampled frames, if any."""
        values = [r.displayed_ssim for r in self.records if r.displayed_ssim is not None]
        if not values:
            return None
        return mean(values)

    def bytes_transferred(self) -> int:
        """Total wire bytes fetched during the session."""
        return sum(r.frame_bytes for r in self.records)

    def deadline_miss_rate(self) -> float:
        """Fraction of frames whose prefetch missed its deadline."""
        if not self.records:
            return 0.0
        return sum(r.deadline_missed for r in self.records) / len(self.records)

    def drop_rate(self) -> float:
        """Fraction of frames whose transfer the ABR policy skipped."""
        if not self.records:
            return 0.0
        return sum(r.dropped for r in self.records) / len(self.records)

    def stale_ages(self) -> List[float]:
        """Stale-fallback ages of the frames that displayed one."""
        return [r.stale_age_ms for r in self.records if r.stale_age_ms is not None]

    def recovery_ms(
        self,
        after_ms: float,
        target_fps: float = 55.0,
        window: int = 30,
    ) -> Optional[float]:
        """Time from ``after_ms`` until FPS is steady again, or None.

        Slides a ``window``-frame window over the records displayed after
        ``after_ms``; recovery is the first instant the window's mean
        interval meets ``target_fps`` *and* contains no deadline miss —
        i.e. the client is back to fetching fresh frames at full rate.
        """
        if target_fps <= 0 or window < 1:
            raise ValueError("target_fps and window must be positive")
        budget_ms = 1000.0 / target_fps
        tail = [r for r in self.records if r.t_ms >= after_ms]
        if len(tail) < window:
            return None
        for i in range(len(tail) - window + 1):
            chunk = tail[i:i + window]
            mean_interval = sum(r.interval_ms for r in chunk) / window
            if mean_interval <= budget_ms and not any(
                r.deadline_missed for r in chunk
            ):
                return max(0.0, chunk[-1].t_ms - after_ms)
        return None

    def inter_frame_tail_ms(self) -> "tuple[float, float, float]":
        """(p50, p95, p99) of the display interval."""
        return tail_summary([r.interval_ms for r in self.records])

    def responsiveness_tail_ms(self) -> "tuple[float, float, float]":
        """(p50, p95, p99) of motion-to-photon latency."""
        return tail_summary([r.responsiveness_ms for r in self.records])

    def summary(self, cpu_utilization: float) -> SessionMetrics:
        """Aggregate into one SessionMetrics row."""
        ages = self.stale_ages()
        p50_if, p95_if, p99_if = self.inter_frame_tail_ms()
        _, p95_resp, p99_resp = self.responsiveness_tail_ms()
        return SessionMetrics(
            fps=self.fps(),
            inter_frame_ms=self.inter_frame_ms(),
            responsiveness_ms=self.responsiveness_ms(),
            net_delay_ms=self.net_delay_ms(),
            frame_kb=self.mean_frame_kb(),
            gpu_utilization=self.gpu_utilization(),
            cpu_utilization=cpu_utilization,
            cache_hit_ratio=self.cache_hit_ratio(),
            mean_ssim=self.mean_ssim(),
            frames=len(self.records),
            p50_inter_frame_ms=p50_if,
            p95_inter_frame_ms=p95_if,
            p99_inter_frame_ms=p99_if,
            p95_responsiveness_ms=p95_resp,
            p99_responsiveness_ms=p99_resp,
            deadline_miss_rate=self.deadline_miss_rate(),
            drop_rate=self.drop_rate(),
            stale_frames=len(ages),
            mean_stale_age_ms=mean(ages) if ages else 0.0,
            max_stale_age_ms=max(ages) if ages else 0.0,
            fetch_retries=self.resilience.fetch_retries,
            fetches_abandoned=self.resilience.fetches_abandoned,
            rewarm_fetches=self.resilience.rewarm_fetches,
            spec_predictions=self.resilience.spec_predictions,
            spec_prefetches=self.resilience.spec_prefetches,
            spec_confirms=self.resilience.spec_confirms,
            spec_mispredictions=self.resilience.spec_mispredictions,
            spec_rollbacks=self.resilience.spec_rollbacks,
            spec_expired=self.resilience.spec_expired,
            desync_alarms=self.resilience.desync_alarms,
            desync_detection_ms=self.resilience.desync_detection_ms,
            resyncs=self.resilience.resyncs,
            resync_recovery_ms=self.resilience.resync_recovery_ms,
        )
