"""Phone CPU utilization model.

The paper reads CPU load from procfs (§7.3).  The measured pattern across
systems (Tables 1 and 8): network packet processing scales with Mbps
(Furion's motivation: 4 Gbps would need "16 equivalent cores"), video
decode adds a steady share while streaming, local game logic and the
render-driver add bases, and Coterie's cache/prefetch bookkeeping adds its
own share.  We model CPU as a sum of those calibrated terms.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuModel:
    """Calibrated CPU-share terms (fractions of total phone CPU)."""

    game_logic: float = 0.08  # engine + input + physics baseline
    render_driver_per_gpu: float = 0.06  # driver cost tracks GPU busy share
    decode_active: float = 0.055  # MediaCodec orchestration while decoding
    per_mbps: float = 0.00045  # packet processing per Mbps of traffic
    cache_management: float = 0.075  # frame cache + prefetcher bookkeeping
    sync_per_player: float = 0.004  # PUN serialization per remote player

    def __post_init__(self) -> None:
        values = (
            self.game_logic,
            self.render_driver_per_gpu,
            self.decode_active,
            self.per_mbps,
            self.cache_management,
            self.sync_per_player,
        )
        if any(v < 0 for v in values):
            raise ValueError("CPU model terms must be non-negative")

    def utilization(
        self,
        gpu_utilization: float,
        net_mbps: float = 0.0,
        decoding: bool = False,
        cache_enabled: bool = False,
        n_players: int = 1,
    ) -> float:
        """Total CPU fraction in [0, 1]."""
        if not 0.0 <= gpu_utilization <= 1.0:
            raise ValueError("gpu_utilization must be in [0, 1]")
        if net_mbps < 0:
            raise ValueError("net_mbps must be non-negative")
        if n_players < 1:
            raise ValueError("n_players must be >= 1")
        total = self.game_logic
        total += self.render_driver_per_gpu * gpu_utilization
        total += self.per_mbps * net_mbps
        if decoding:
            total += self.decode_active
        if cache_enabled:
            total += self.cache_management
        total += self.sync_per_player * (n_players - 1)
        return min(1.0, total)
