"""Battery power-draw model (Fig. 12's bottom row).

The paper logs current and voltage from sysfs while playing: the draw sits
"fairly steady at 4 W on average" with the display locked at full
brightness in VR mode, and the 2770 mAh battery sustains >2.5 hours.  The
model: a display+SoC base (dominated by the always-max-brightness panel)
plus terms proportional to CPU share, GPU share, and radio traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

# Pixel 2 battery: 2770 mAh at a 3.85 V nominal cell voltage.
BATTERY_WH = 2.770 * 3.85


@dataclass(frozen=True)
class PowerModel:
    """Calibrated component powers in watts."""

    base_w: float = 2.05  # display @100% brightness + SoC idle + sensors
    cpu_w: float = 1.1  # at 100% CPU
    gpu_w: float = 2.3  # at 100% GPU
    wifi_w_per_mbps: float = 0.0035  # radio power per Mbps received

    def __post_init__(self) -> None:
        if min(self.base_w, self.cpu_w, self.gpu_w, self.wifi_w_per_mbps) < 0:
            raise ValueError("power terms must be non-negative")

    def draw_w(
        self, cpu_utilization: float, gpu_utilization: float, net_mbps: float = 0.0
    ) -> float:
        """Instantaneous power draw in watts."""
        if not 0.0 <= cpu_utilization <= 1.0:
            raise ValueError("cpu_utilization must be in [0, 1]")
        if not 0.0 <= gpu_utilization <= 1.0:
            raise ValueError("gpu_utilization must be in [0, 1]")
        if net_mbps < 0:
            raise ValueError("net_mbps must be non-negative")
        return (
            self.base_w
            + self.cpu_w * cpu_utilization
            + self.gpu_w * gpu_utilization
            + self.wifi_w_per_mbps * net_mbps
        )

    def battery_life_hours(self, draw_w: float, battery_wh: float = BATTERY_WH) -> float:
        """Runtime on a full battery at a constant draw."""
        if draw_w <= 0:
            raise ValueError("draw_w must be positive")
        if battery_wh <= 0:
            raise ValueError("battery_wh must be positive")
        return battery_wh / draw_w
