"""Closed-loop adaptive streaming: rate estimation driving CRF ladder
control, prefetch throttling, and app-layer frame dropping."""

from .controller import AbrConfig, AbrController, crf_size_scale

__all__ = ["AbrConfig", "AbrController", "crf_size_scale"]
