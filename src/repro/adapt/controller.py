"""The closed-loop adaptation controller: CRF ladder, throttle, drops.

One :class:`AbrController` runs per client inside a system's frame loop.
Every completed transfer feeds its :class:`~repro.net.RateEstimator`;
every frame the controller re-evaluates three decisions against the
estimator's forecast of the *next* transfer's latency:

* **CRF ladder** — when the forecast crosses the high watermark of the
  prefetch deadline, the client steps one rung down the quality ladder
  (higher CRF, ~0.71x the bytes per +3 CRF, mirroring x264's quantizer
  staircase); when the forecast *at the next better rung* sits under the
  low watermark, it steps back up.  The watermark gap plus a dwell time
  is the hysteresis that prevents rung flapping on a noisy link.
* **Prefetch throttling** — while degraded (any rung below the base
  quality) the prefetcher's dist-thresh acceptance band is widened by
  ``prefetch_throttle``, so more cached candidates serve in place of
  fetches: the client trades a little spatial fidelity for offered load,
  exactly Coterie's frame-similarity lever.
* **Frame dropping** — when even the forecast says a fetch cannot land
  inside ``drop_margin`` deadlines, the transfer is not issued at all;
  the client charges a stale-frame fallback (the PR 2
  ``FrameCache.nearest`` path) and stays at cadence.  Drops are *chosen*
  degradation and are accounted separately from deadline misses (which
  are reactive failures).  ``max_consecutive_drops`` bounds the run: a
  forced real fetch refreshes the estimator so a stale forecast cannot
  pin a client in drop mode after the link recovers.

Determinism: decisions are pure functions of the observation stream and
config — no RNG, no wall clock — so a (trace, seed, config) replay
reproduces every step/drop bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..net.estimator import EstimatorConfig, RateEstimator

#: CRF-to-size staircase: wire bytes roughly halve every +6 CRF
#: (matching repro.codec.quant.quant_scale's doubling quantizer).
CRF_SIZE_HALVING = 6.0


def crf_size_scale(crf: float, base_crf: float) -> float:
    """Wire-size multiplier of encoding at ``crf`` instead of ``base_crf``."""
    return 2.0 ** (-(crf - base_crf) / CRF_SIZE_HALVING)


@dataclass(frozen=True)
class AbrConfig:
    """Knobs of the per-client adaptation policy."""

    #: Quality ladder as CRF rungs, best (lowest CRF) first after sorting.
    #: The session's base CRF is inserted if absent, and the controller
    #: starts there.
    ladder: Tuple[float, ...] = (22.0, 25.0, 28.0, 31.0, 34.0, 37.0, 40.0)
    #: Step down (worse quality) when forecast > high_watermark * deadline.
    #: Tuned with the watermark sweep in E-R3: 0.9 reacts too late on the
    #: bufferbloat ramp (the forecast crosses 0.9x deadline only after
    #: misses already started); 0.75 beats fixed-CRF on all three traces.
    high_watermark: float = 0.75
    #: Step up when the forecast at the better rung < low_watermark * deadline.
    low_watermark: float = 0.45
    #: Minimum time between ladder steps (anti-flap dwell).
    dwell_ms: float = 200.0
    #: Skip the transfer entirely when forecast >= drop_margin * deadline.
    drop_margin: float = 1.4
    #: Whether the app-layer frame-drop policy is active.
    drop_policy: bool = True
    #: Forced real fetch after this many back-to-back drops (estimator
    #: refresh); the stale forecast problem, see module docstring.
    max_consecutive_drops: int = 3
    #: Dist-thresh widening applied to the prefetcher while degraded
    #: (1.0 disables throttling).
    prefetch_throttle: float = 1.5
    #: Estimator knobs (EWMA alpha, min window, warm-up).
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)

    def __post_init__(self) -> None:
        if len(self.ladder) < 1:
            raise ValueError("ladder needs at least one rung")
        for crf in self.ladder:
            if not 0.0 <= crf <= 51.0:
                raise ValueError(f"ladder CRF must be in [0, 51], got {crf}")
        if len(set(self.ladder)) != len(self.ladder):
            raise ValueError("ladder rungs must be distinct")
        if not 0.0 < self.low_watermark < self.high_watermark:
            raise ValueError(
                "need 0 < low_watermark < high_watermark (hysteresis band)"
            )
        if self.drop_margin < self.high_watermark:
            raise ValueError(
                "drop_margin must be >= high_watermark (drop is the last "
                "resort, after the ladder)"
            )
        if self.dwell_ms < 0:
            raise ValueError("dwell_ms must be non-negative")
        if self.max_consecutive_drops < 1:
            raise ValueError("max_consecutive_drops must be >= 1")
        if self.prefetch_throttle < 1.0:
            raise ValueError("prefetch_throttle must be >= 1.0")


class AbrController:
    """Closed-loop per-client adaptation over one session."""

    def __init__(
        self,
        config: AbrConfig,
        player_id: int,
        base_crf: float,
        deadline_ms: float,
        nominal_bytes: float,
        tracer=None,
    ) -> None:
        if deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if nominal_bytes <= 0:
            raise ValueError("nominal_bytes must be positive")
        self.config = config
        self.player_id = player_id
        self.base_crf = base_crf
        self.deadline_ms = deadline_ms
        #: Typical wire size at base quality; the ladder forecast anchor.
        self.nominal_bytes = nominal_bytes
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self.estimator = RateEstimator(config.estimator)
        ladder = sorted(set(config.ladder) | {base_crf})
        self.ladder: Tuple[float, ...] = tuple(ladder)
        self._base_rung = self.ladder.index(base_crf)
        self.rung = self._base_rung
        self._last_step_ms = float("-inf")
        self._consecutive_drops = 0
        # Outcome accounting.
        self.steps_down = 0
        self.steps_up = 0
        self.drops = 0
        self.crf_timeline: List[Tuple[float, float]] = [(0.0, base_crf)]

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def crf(self) -> float:
        """The CRF the client currently requests frames at."""
        return self.ladder[self.rung]

    @property
    def degraded(self) -> bool:
        """Whether the client sits below its base quality rung."""
        return self.rung > self._base_rung

    def size_scale(self, crf: Optional[float] = None) -> float:
        """Wire-size multiplier of the current (or given) rung."""
        return crf_size_scale(self.crf if crf is None else crf, self.base_crf)

    def scaled_bytes(self, size_bytes: float) -> int:
        """A base-quality wire size re-encoded at the current rung."""
        return max(1, int(round(size_bytes * self.size_scale())))

    def thresh_scale(self) -> float:
        """Dist-thresh widening the prefetcher should apply right now."""
        if self.degraded:
            return self.config.prefetch_throttle
        return 1.0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def observe_transfer(
        self, now_ms: float, size_bytes: float, duration_ms: float
    ) -> None:
        """Feed one completed link transfer into the estimator."""
        self.estimator.observe(now_ms, size_bytes, duration_ms)
        self._consecutive_drops = 0

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def on_frame(self, now_ms: float) -> Optional[str]:
        """Re-evaluate the ladder once per frame; returns the step taken.

        Called at the top of the frame loop, before the fetch decision,
        so the chosen rung applies to this frame's transfer.
        """
        cfg = self.config
        forecast = self.estimator.predict_transfer_ms(
            self.nominal_bytes * self.size_scale()
        )
        if forecast is None:
            return None  # estimator still warming up: hold the rung
        if now_ms - self._last_step_ms < cfg.dwell_ms:
            return None
        if (
            forecast > cfg.high_watermark * self.deadline_ms
            and self.rung < len(self.ladder) - 1
        ):
            self.rung += 1
            self.steps_down += 1
            self._note_step(now_ms, "abr.step_down", forecast)
            return "down"
        if self.rung > self._base_rung:
            # Never exceed the session's configured base quality: rungs
            # *above* base (lower CRF in the ladder) only exist so other
            # sessions can start there; this client's contract is base.
            better = self.estimator.predict_transfer_ms(
                self.nominal_bytes * self.size_scale(self.ladder[self.rung - 1])
            )
            if better is not None and better < cfg.low_watermark * self.deadline_ms:
                self.rung -= 1
                self.steps_up += 1
                self._note_step(now_ms, "abr.step_up", better)
                return "up"
        return None

    def should_drop(self, now_ms: float, size_bytes: float) -> bool:
        """Whether to skip this frame's transfer outright.

        True when the forecast says the fetch cannot land within
        ``drop_margin`` deadlines — unless the consecutive-drop cap forces
        a real fetch to refresh the estimator.  A True return is already
        accounted (drop counters, tracer instant); the caller must then
        actually skip the transfer and charge its stale fallback.
        """
        cfg = self.config
        if not cfg.drop_policy:
            return False
        if self._consecutive_drops >= cfg.max_consecutive_drops:
            return False
        forecast = self.estimator.predict_transfer_ms(size_bytes)
        if forecast is None or forecast < cfg.drop_margin * self.deadline_ms:
            return False
        self.drops += 1
        self._consecutive_drops += 1
        if self.tracer is not None:
            self.tracer.instant(
                "abr.drop", self.player_id, "abr", now_ms, cat="abr",
                args={"bytes": int(size_bytes),
                      "predicted_ms": round(forecast, 3),
                      "deadline_ms": round(self.deadline_ms, 3),
                      "consecutive": self._consecutive_drops},
            )
        return True

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _note_step(self, now_ms: float, event: str, forecast: float) -> None:
        self._last_step_ms = now_ms
        self.crf_timeline.append((now_ms, self.crf))
        if self.tracer is not None:
            self.tracer.instant(
                event, self.player_id, "abr", now_ms, cat="abr",
                args={"crf": self.crf,
                      "predicted_ms": round(forecast, 3),
                      "deadline_ms": round(self.deadline_ms, 3)},
            )

    def mean_crf(self, end_ms: float) -> float:
        """Time-weighted mean CRF over [0, end_ms]."""
        if end_ms <= 0:
            return self.base_crf
        total = 0.0
        for i, (start_ms, crf) in enumerate(self.crf_timeline):
            stop_ms = (
                self.crf_timeline[i + 1][0]
                if i + 1 < len(self.crf_timeline)
                else end_ms
            )
            stop_ms = min(stop_ms, end_ms)
            if stop_ms > start_ms:
                total += (stop_ms - start_ms) * crf
        return total / end_ms

    def degraded_ms(self, end_ms: float) -> float:
        """Total time spent below base quality over [0, end_ms]."""
        total = 0.0
        for i, (start_ms, crf) in enumerate(self.crf_timeline):
            stop_ms = (
                self.crf_timeline[i + 1][0]
                if i + 1 < len(self.crf_timeline)
                else end_ms
            )
            stop_ms = min(stop_ms, end_ms)
            if crf > self.base_crf and stop_ms > start_ms:
                total += stop_ms - start_ms
        return total

    def recovery_after_ms(self, episode_end_ms: float) -> Optional[float]:
        """Time from a trace episode's end until base quality resumed.

        None when the client never returned to its base rung after
        ``episode_end_ms`` (or was never degraded there at all).
        """
        was_degraded = False
        for start_ms, crf in self.crf_timeline:
            if start_ms < episode_end_ms:
                was_degraded = crf > self.base_crf
                continue
            if crf <= self.base_crf:
                return start_ms - episode_end_ms if was_degraded else 0.0
            was_degraded = True
        return None if was_degraded else 0.0
