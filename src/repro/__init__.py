"""Coterie (ASPLOS 2020) reproduction.

A full Python reimplementation of "Coterie: Exploiting Frame Similarity to
Enable High-Quality Multiplayer VR on Commodity Mobile Devices" (Meng,
Paul, Hu) on simulated substrates: procedural game worlds, a software
panoramic renderer, a DCT video codec, a discrete-event 802.11ac model,
and device timing/power/thermal models — plus the paper's algorithms
(adaptive cutoff quadtree, frame cache, prefetcher) and the four
end-to-end systems (Mobile, Thin-client, Multi-Furion, Coterie).

Typical entry points:

>>> from repro.world import load_game
>>> from repro.systems import SessionConfig, prepare_artifacts, run_coterie
>>> world = load_game("viking")
>>> config = SessionConfig(duration_s=10, seed=42)
>>> artifacts = prepare_artifacts(world, config)
>>> result = run_coterie(world, 4, config, artifacts)
>>> result.mean_fps  # doctest: +SKIP
60.0

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "codec",
    "core",
    "geometry",
    "metrics",
    "net",
    "render",
    "sim",
    "similarity",
    "systems",
    "trace",
    "world",
]
