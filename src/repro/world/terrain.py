"""Terrain heightfields.

The offline preprocessing module accounts for "the varying elevation and
slope of the terrains where players stand" (§6) by ray-tracing footholds.
These heightfields supply that elevation: flat floors for indoor games,
rolling hills for village/adventure maps, and a ridged profile for the
mountain racing world.  All are pure deterministic functions of position.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..geometry import Vec2


@dataclass(frozen=True)
class FlatTerrain:
    """A constant-elevation floor (indoor games)."""

    elevation: float = 0.0

    def __call__(self, point: Vec2) -> float:
        return self.elevation


@dataclass(frozen=True)
class RollingTerrain:
    """Gently rolling hills as a sum of incommensurate sine waves.

    ``amplitude`` is the peak height contribution of each wave;
    ``wavelength`` sets the horizontal scale.  Deterministic in position,
    with ``phase_seed`` decorrelating different games' terrain.
    """

    amplitude: float = 1.5
    wavelength: float = 60.0
    octaves: int = 3
    phase_seed: int = 0

    def __post_init__(self) -> None:
        if self.amplitude < 0 or self.wavelength <= 0 or self.octaves < 1:
            raise ValueError(f"invalid terrain parameters: {self}")

    def __call__(self, point: Vec2) -> float:
        height = 0.0
        amp = self.amplitude
        freq = 2.0 * math.pi / self.wavelength
        for octave in range(self.octaves):
            phase = (self.phase_seed * 2654435761 + octave * 40503) % 628318 / 1e5
            height += amp * math.sin(point.x * freq + phase)
            height += amp * math.sin(point.y * freq * 1.137 + phase * 1.618)
            amp *= 0.5
            freq *= 2.1
        return height


@dataclass(frozen=True)
class RidgeTerrain:
    """Mountain-valley profile: a broad valley floor rising toward the rim.

    Used by the Racing Mountain world; the track runs along the valley while
    the rim forms the distant backdrop.
    """

    rim_height: float = 80.0
    valley_center: Vec2 = field(default_factory=lambda: Vec2(545.0, 548.0))
    valley_radius: float = 350.0
    roughness: float = 3.0

    def __post_init__(self) -> None:
        if self.rim_height < 0 or self.valley_radius <= 0 or self.roughness < 0:
            raise ValueError(f"invalid ridge parameters: {self}")

    def __call__(self, point: Vec2) -> float:
        d = point.distance_to(self.valley_center)
        # Smooth rise beyond the valley radius.
        excess = max(0.0, d - self.valley_radius)
        base = self.rim_height * (1.0 - math.exp(-excess / (self.valley_radius * 0.5)))
        ripple = self.roughness * math.sin(point.x * 0.05) * math.cos(point.y * 0.041)
        return base + ripple
