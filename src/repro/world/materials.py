"""Object-kind catalog for procedural scene generation.

Unity scenes are built from *assets*; our procedural worlds are built from
object kinds whose geometric complexity (triangle count), physical size,
and shading (base luminance + texture contrast) drive everything downstream:
render cost (Constraint 1 searches over triangle counts), frame appearance
(SSIM), and compressed frame size (the codec sees the texture detail).

Triangle counts are per-asset figures typical of mobile-targeted Unity
assets: grass tufts and props are hundreds of triangles, trees are a few
thousand, buildings tens of thousands, hero set-pieces (stadiums) hundreds
of thousands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class ObjectKind:
    """A class of placeable scene object.

    Attributes
    ----------
    name:
        Catalog key.
    triangles:
        (low, high) triangle-count range; generation draws uniformly.
    radius:
        (low, high) bounding-sphere radius range in metres.
    luminance:
        Base surface luminance in [0, 1] for the grayscale renderer.
    contrast:
        Texture contrast in [0, 1]; higher contrast costs more bits in
        the codec and contributes more structure to SSIM.
    grounded:
        Whether the object sits on the terrain (True) or floats with its
        centre at ``radius`` above ground anyway (all our kinds are
        grounded; kept for extensions like birds/clouds).
    """

    name: str
    triangles: Tuple[int, int]
    radius: Tuple[float, float]
    luminance: float
    contrast: float
    grounded: bool = True

    def __post_init__(self) -> None:
        lo_t, hi_t = self.triangles
        lo_r, hi_r = self.radius
        if lo_t <= 0 or hi_t < lo_t:
            raise ValueError(f"bad triangle range for {self.name}: {self.triangles}")
        if lo_r <= 0 or hi_r < lo_r:
            raise ValueError(f"bad radius range for {self.name}: {self.radius}")
        if not (0.0 <= self.luminance <= 1.0 and 0.0 <= self.contrast <= 1.0):
            raise ValueError(f"luminance/contrast out of [0,1] for {self.name}")


_CATALOG: Dict[str, ObjectKind] = {}


def _register(kind: ObjectKind) -> ObjectKind:
    if kind.name in _CATALOG:
        raise ValueError(f"duplicate object kind {kind.name!r}")
    _CATALOG[kind.name] = kind
    return kind


# Outdoor vegetation and props
GRASS = _register(ObjectKind("grass", (120, 400), (0.2, 0.6), 0.35, 0.30))
BUSH = _register(ObjectKind("bush", (400, 1500), (0.5, 1.2), 0.30, 0.35))
TREE = _register(ObjectKind("tree", (1500, 6000), (1.5, 4.0), 0.28, 0.40))
ROCK = _register(ObjectKind("rock", (300, 1200), (0.4, 2.0), 0.45, 0.25))
CRATE = _register(ObjectKind("crate", (200, 600), (0.4, 0.8), 0.50, 0.20))
FENCE = _register(ObjectKind("fence", (500, 1500), (1.0, 2.5), 0.40, 0.25))

# Structures
HUT = _register(ObjectKind("hut", (8000, 25000), (3.0, 6.0), 0.55, 0.30))
HOUSE = _register(ObjectKind("house", (20000, 60000), (5.0, 10.0), 0.60, 0.30))
LONGHOUSE = _register(ObjectKind("longhouse", (40000, 120000), (8.0, 15.0), 0.52, 0.35))
STADIUM = _register(ObjectKind("stadium", (150000, 400000), (20.0, 40.0), 0.65, 0.30))
TOWER = _register(ObjectKind("tower", (30000, 80000), (4.0, 8.0), 0.58, 0.30))

# Hero set-pieces: single assets heavy enough that standing next to one
# saturates a mobile GPU frame budget by itself (drives the smallest
# cutoff radiuses the adaptive scheme produces).
HALL = _register(ObjectKind("hall", (1500000, 4000000), (8.0, 14.0), 0.50, 0.35))
GROVE = _register(ObjectKind("grove", (30000, 90000), (6.0, 12.0), 0.26, 0.40))
# Distant scenery mass (mountain faces): single meshes heavy enough that a
# racing world's whole-BE render stays expensive even though nothing is
# near the track (Table 1: Racing Mobile runs at ~27 FPS).
MOUNTAIN = _register(ObjectKind("mountain", (12000000, 30000000), (50.0, 90.0), 0.47, 0.30))

# Vehicles / track-side
CAR = _register(ObjectKind("car", (15000, 40000), (1.5, 2.5), 0.70, 0.35))
BARRIER = _register(ObjectKind("barrier", (300, 900), (0.8, 1.5), 0.75, 0.20))
BILLBOARD = _register(ObjectKind("billboard", (100, 300), (2.0, 4.0), 0.80, 0.45))
GRANDSTAND = _register(ObjectKind("grandstand", (50000, 150000), (8.0, 18.0), 0.60, 0.35))
PERSON = _register(ObjectKind("person", (5000, 15000), (0.4, 0.6), 0.62, 0.30))

# Indoor furniture
TABLE = _register(ObjectKind("table", (12000, 40000), (0.8, 1.5), 0.48, 0.25))
CHAIR = _register(ObjectKind("chair", (8000, 25000), (0.4, 0.7), 0.45, 0.22))
LAMP = _register(ObjectKind("lamp", (4000, 12000), (0.3, 0.6), 0.85, 0.20))
PILLAR = _register(ObjectKind("pillar", (6000, 20000), (0.5, 1.0), 0.55, 0.15))
BOOKCASE = _register(ObjectKind("bookcase", (30000, 90000), (1.0, 2.0), 0.42, 0.40))
POOL_TABLE = _register(ObjectKind("pool_table", (60000, 160000), (1.5, 2.0), 0.35, 0.30))
BOWLING_LANE = _register(ObjectKind("bowling_lane", (50000, 120000), (3.0, 6.0), 0.68, 0.25))
WALL_PANEL = _register(ObjectKind("wall_panel", (2000, 8000), (1.5, 3.0), 0.58, 0.20))


def kind(name: str) -> ObjectKind:
    """Look up an object kind by catalog name."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown object kind {name!r}; known: {sorted(_CATALOG)}"
        ) from None


def catalog() -> Dict[str, ObjectKind]:
    """A copy of the full kind catalog."""
    return dict(_CATALOG)
