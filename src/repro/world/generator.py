"""Procedural scene generation.

Worlds are generated from a *triangle-density field* (triangles per square
metre as a function of ground position) plus a mixture of object kinds.
Density is the quantity the paper's adaptive cutoff scheme reacts to —
"the object density across the virtual world of the VR games can vary
significantly" (§4.3) — so the field is the lever that lets each game
reproduce its Table 3 quadtree shape: Viking Village gets strong blob
variation (deep quadtree, 2944 leaves), CTS gets gentle variation, the
racing games get dense start/finish areas along a sparse valley.

Generation is fully deterministic given the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Rect, Vec2
from .materials import ObjectKind
from .objects import SceneObject, make_object
from .reachability import TrackMask
from .scene import Scene, TerrainFn


@dataclass(frozen=True)
class DensityBlob:
    """A gaussian bump of extra triangle density (an asset cluster)."""

    center: Vec2
    sigma: float
    amplitude: float  # peak extra triangles / m^2

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("blob sigma must be positive")
        if self.amplitude < 0:
            raise ValueError("blob amplitude must be non-negative")

    def __call__(self, point: Vec2) -> float:
        d_sq = (point - self.center).norm_sq()
        return self.amplitude * math.exp(-d_sq / (2.0 * self.sigma * self.sigma))


class DensityField:
    """Triangle density (tri/m^2) = base + gaussian blobs + track band."""

    def __init__(
        self,
        base: float,
        blobs: Sequence[DensityBlob] = (),
        track: Optional[TrackMask] = None,
        track_band_width: float = 30.0,
        track_band_density: float = 0.0,
    ) -> None:
        if base < 0:
            raise ValueError("base density must be non-negative")
        if track_band_width <= 0:
            raise ValueError("track_band_width must be positive")
        if track_band_density < 0:
            raise ValueError("track_band_density must be non-negative")
        self.base = base
        self.blobs = list(blobs)
        self.track = track
        self.track_band_width = track_band_width
        self.track_band_density = track_band_density

    def __call__(self, point: Vec2) -> float:
        density = self.base + sum(blob(point) for blob in self.blobs)
        if self.track is not None and self.track_band_density > 0:
            dist = self.track.distance_to_centerline(point)
            if dist <= self.track_band_width:
                # Track-side assets hug the verge and taper off outward.
                density += self.track_band_density * (
                    1.0 - dist / self.track_band_width
                )
        return density

    @staticmethod
    def random_blobs(
        bounds: Rect,
        count: int,
        sigma_range: Tuple[float, float],
        amplitude_range: Tuple[float, float],
        rng: np.random.Generator,
    ) -> List[DensityBlob]:
        """Scatter ``count`` seeded blobs uniformly over the world."""
        if count < 0:
            raise ValueError("count must be non-negative")
        blobs = []
        for center in bounds.sample(rng, count):
            sigma = float(rng.uniform(*sigma_range))
            amplitude = float(rng.uniform(*amplitude_range))
            blobs.append(DensityBlob(center=center, sigma=sigma, amplitude=amplitude))
        return blobs


@dataclass(frozen=True)
class KindMixture:
    """A weighted mixture of object kinds to draw placements from."""

    kinds: Tuple[ObjectKind, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.kinds) != len(self.weights) or not self.kinds:
            raise ValueError("kinds and weights must be non-empty and equal-length")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative with positive sum")

    def mean_triangles(self) -> float:
        """Expected triangles of one draw from the mixture."""
        total_w = sum(self.weights)
        return sum(
            w * (k.triangles[0] + k.triangles[1]) / 2.0
            for k, w in zip(self.kinds, self.weights)
        ) / total_w

    def _cumulative(self) -> Tuple[float, ...]:
        total = sum(self.weights)
        running = 0.0
        cumulative = []
        for w in self.weights:
            running += w / total
            cumulative.append(running)
        return tuple(cumulative)

    def draw(self, rng: np.random.Generator) -> ObjectKind:
        """Sample a kind according to the weights."""
        u = float(rng.random())
        for kind_obj, threshold in zip(self.kinds, self._cumulative()):
            if u <= threshold:
                return kind_obj
        return self.kinds[-1]


def generate_scene(
    bounds: Rect,
    terrain: TerrainFn,
    density: Callable[[Vec2], float],
    mixture: KindMixture,
    seed: int,
    placement_cell: float = 8.0,
    keep_clear: Optional[Callable[[Vec2], bool]] = None,
    max_objects: int = 50_000,
    clutter_mixture: Optional[KindMixture] = None,
    clutter_per_m2: float = 0.0,
    clutter_mask: Optional[Callable[[Vec2], bool]] = None,
) -> Scene:
    """Generate a scene by filling placement cells up to the density budget.

    Each ``placement_cell`` x ``placement_cell`` square receives *structure*
    objects until their cumulative triangle count reaches the local density
    target.  A second pass scatters light *clutter* objects (grass, props)
    at ``clutter_per_m2`` objects per square metre: these contribute little
    render cost but sit everywhere near the player, which is what makes the
    "near-object" effect (§4.2) pervasive rather than occasional.
    ``keep_clear`` marks positions where structures must not be placed
    (e.g. the drivable track surface); ``clutter_mask`` restricts where
    clutter appears (default: anywhere structures may go).
    """
    if placement_cell <= 0:
        raise ValueError("placement_cell must be positive")
    if clutter_per_m2 < 0:
        raise ValueError("clutter_per_m2 must be non-negative")
    rng = np.random.default_rng(seed)
    objects: List[SceneObject] = []
    next_id = 0
    cell_area = placement_cell * placement_cell
    mean_triangles = mixture.mean_triangles()

    ny = max(1, int(math.ceil(bounds.height / placement_cell)))
    nx = max(1, int(math.ceil(bounds.width / placement_cell)))
    for j in range(ny):
        for i in range(nx):
            cell = Rect(
                bounds.x_min + i * placement_cell,
                bounds.y_min + j * placement_cell,
                min(bounds.x_min + (i + 1) * placement_cell, bounds.x_max),
                min(bounds.y_min + (j + 1) * placement_cell, bounds.y_max),
            )
            if cell.area == 0:
                continue
            target = density(cell.center) * cell_area
            if target <= 0:
                continue
            # Poisson placement with the statistically correct expectation:
            # a cell whose triangle budget is a fraction of one mean object
            # gets an object only that fraction of the time (a minimum of
            # one object per cell would inflate sparse worlds many-fold).
            expected_count = target / mean_triangles
            count = int(rng.poisson(expected_count))
            attempts = 0
            max_attempts = 4 * count + 8  # keep_clear cells cannot spin forever
            while count > 0 and attempts < max_attempts:
                attempts += 1
                position = cell.sample(rng, 1)[0]
                if keep_clear is not None and keep_clear(position):
                    continue
                kind = mixture.draw(rng)
                obj = make_object(
                    next_id, kind, position, terrain(position), rng
                )
                objects.append(obj)
                next_id += 1
                count -= 1
                if next_id >= max_objects:
                    return Scene(bounds, objects, terrain)

    if clutter_per_m2 > 0:
        if clutter_mixture is None:
            raise ValueError("clutter_per_m2 set but no clutter_mixture given")
        clutter_count = min(
            max_objects - next_id,
            rng.poisson(clutter_per_m2 * bounds.area),
        )
        for position in bounds.sample(rng, max(0, int(clutter_count))):
            if clutter_mask is not None:
                if not clutter_mask(position):
                    continue
            elif keep_clear is not None and keep_clear(position):
                continue
            kind = clutter_mixture.draw(rng)
            objects.append(
                make_object(next_id, kind, position, terrain(position), rng)
            )
            next_id += 1
    return Scene(bounds, objects, terrain)
