"""Scene objects: the placed instances that make up a virtual world.

A :class:`SceneObject` is the unit the whole reproduction revolves around:
the near/far BE split classifies *objects* by distance from the player
(§4.3, with the footnote that an object may be "cut in the middle"), the
cutoff search counts their triangles, and the renderer projects them into
panoramic frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import Vec2, Vec3
from .materials import ObjectKind


@dataclass(frozen=True)
class SceneObject:
    """An immutable placed object.

    Attributes
    ----------
    object_id:
        Unique id within a scene; stable across runs for a given seed, so
        cache criterion 3 ("same set of near objects", §5.3) can compare
        id sets.
    kind_name:
        Catalog kind this instance was drawn from.
    center:
        Centre of the bounding sphere in world space (z includes terrain
        elevation plus the grounded offset).
    radius:
        Bounding-sphere radius (metres).
    triangles:
        Mesh complexity used by the render-cost model.
    luminance / contrast:
        Shading parameters for the grayscale renderer.
    texture_seed:
        Per-instance seed for the procedural surface texture, so two
        instances of one kind do not look identical.
    """

    object_id: int
    kind_name: str
    center: Vec3
    radius: float
    triangles: int
    luminance: float
    contrast: float
    texture_seed: int

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"object {self.object_id}: radius must be positive")
        if self.triangles <= 0:
            raise ValueError(f"object {self.object_id}: triangles must be positive")

    @property
    def ground_position(self) -> Vec2:
        """Footprint centre on the 2D ground plane."""
        return self.center.ground()

    def ground_distance_to(self, point: Vec2) -> float:
        """2D distance from the object's footprint to a ground point.

        The cutoff radius is defined on the ground plane (players move in
        2D), so near/far classification uses this distance, not the 3D one.
        """
        return self.ground_position.distance_to(point)

    def is_near(self, viewpoint: Vec2, cutoff_radius: float) -> bool:
        """Near-BE membership under a given cutoff radius."""
        if cutoff_radius < 0:
            raise ValueError("cutoff_radius must be non-negative")
        return self.ground_distance_to(viewpoint) <= cutoff_radius


def make_object(
    object_id: int,
    kind: ObjectKind,
    position: Vec2,
    terrain_height: float,
    rng,
) -> SceneObject:
    """Instantiate a kind at a ground position, drawing per-instance values.

    The bounding sphere sits tangent to the terrain for grounded kinds
    (centre at ``terrain_height + radius``).
    """
    radius = float(rng.uniform(*kind.radius))
    triangles = int(rng.integers(kind.triangles[0], kind.triangles[1] + 1))
    z = terrain_height + (radius if kind.grounded else 2.0 * radius)
    luminance = float(
        min(1.0, max(0.0, kind.luminance + rng.normal(0.0, 0.05)))
    )
    return SceneObject(
        object_id=object_id,
        kind_name=kind.name,
        center=Vec3(position.x, position.y, z),
        radius=radius,
        triangles=triangles,
        luminance=luminance,
        contrast=kind.contrast,
        texture_seed=int(rng.integers(0, 2**31 - 1)),
    )
