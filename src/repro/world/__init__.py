"""Virtual-world substrate: objects, terrain, scenes, procedural games."""

from .games import (
    ALL_GAMES,
    GRID_PITCH,
    HEADLINE_GAMES,
    INDOOR_GAMES,
    OUTDOOR_GAMES,
    GameSpec,
    GameWorld,
    PlayerProfile,
    build_game,
    game_spec,
    load_game,
)
from .generator import DensityBlob, DensityField, KindMixture, generate_scene
from .materials import ObjectKind, catalog, kind
from .objects import SceneObject, make_object
from .reachability import FullAreaMask, RoomMask, TrackMask, oval_track
from .scene import BePartition, Scene
from .terrain import FlatTerrain, RidgeTerrain, RollingTerrain

__all__ = [
    "ALL_GAMES",
    "BePartition",
    "DensityBlob",
    "DensityField",
    "FlatTerrain",
    "FullAreaMask",
    "GRID_PITCH",
    "GameSpec",
    "GameWorld",
    "HEADLINE_GAMES",
    "INDOOR_GAMES",
    "KindMixture",
    "ObjectKind",
    "OUTDOOR_GAMES",
    "PlayerProfile",
    "RidgeTerrain",
    "RollingTerrain",
    "RoomMask",
    "Scene",
    "SceneObject",
    "TrackMask",
    "build_game",
    "load_game",
    "catalog",
    "game_spec",
    "generate_scene",
    "kind",
    "make_object",
    "oval_track",
]
