"""The Scene: placed objects + terrain + spatial queries.

Every higher layer asks the scene the same few questions, always centred on
a viewpoint:

* which objects are within / beyond a cutoff radius (near/far BE split);
* how many triangles lie within a radius (Constraint 1 cost input);
* what is the set of near-object ids (frame-cache criterion 3).

A uniform-cell spatial hash answers these in time proportional to the
objects actually in range, which matters because paper-scale worlds carry
tens of thousands of objects.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..geometry import Rect, Vec2
from .objects import SceneObject

TerrainFn = Callable[[Vec2], float]


@dataclass(frozen=True)
class BePartition:
    """The near/far split of a scene's objects for one viewpoint."""

    viewpoint: Vec2
    cutoff_radius: float
    near: Tuple[SceneObject, ...]
    far: Tuple[SceneObject, ...]

    @property
    def near_ids(self) -> FrozenSet[int]:
        """Identity of the near set; cache lookups compare these (§5.3)."""
        return frozenset(obj.object_id for obj in self.near)


class Scene:
    """An immutable collection of scene objects with fast radius queries."""

    def __init__(
        self,
        bounds: Rect,
        objects: Iterable[SceneObject],
        terrain: TerrainFn,
        cell_size: float = 16.0,
        ground_seed: int = 0,
    ) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.bounds = bounds
        self.terrain = terrain
        self.cell_size = cell_size
        # Seed for the procedural ground/sky textures so different games
        # do not share one terrain skin.
        self.ground_seed = ground_seed
        self._objects: List[SceneObject] = list(objects)
        ids = [obj.object_id for obj in self._objects]
        if len(set(ids)) != len(ids):
            raise ValueError("scene objects must have unique ids")
        self._cells: Dict[Tuple[int, int], List[SceneObject]] = defaultdict(list)
        for obj in self._objects:
            self._cells[self._cell_of(obj.ground_position)].append(obj)

    def _cell_of(self, point: Vec2) -> Tuple[int, int]:
        return (
            int(math.floor(point.x / self.cell_size)),
            int(math.floor(point.y / self.cell_size)),
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def objects(self) -> List[SceneObject]:
        return list(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    def total_triangles(self) -> int:
        """Sum of all objects' triangle counts."""
        return sum(obj.triangles for obj in self._objects)

    def position_triangle_arrays(self):
        """Cached (N, 2) ground positions and (N,) triangle counts.

        Vectorized consumers (the cutoff search) use these instead of
        per-object queries; built lazily once per scene.
        """
        if not hasattr(self, "_pos_tri_arrays"):
            import numpy as np

            positions = np.array(
                [[o.center.x, o.center.y] for o in self._objects], dtype=np.float64
            ).reshape(len(self._objects), 2)
            triangles = np.array(
                [o.triangles for o in self._objects], dtype=np.float64
            )
            self._pos_tri_arrays = (positions, triangles)
        return self._pos_tri_arrays

    # ------------------------------------------------------------------
    # Radius queries
    # ------------------------------------------------------------------

    def objects_within(
        self, center: Vec2, radius: float
    ) -> List[SceneObject]:
        """Objects whose footprint centre is within ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        lo_i, lo_j = self._cell_of(Vec2(center.x - radius, center.y - radius))
        hi_i, hi_j = self._cell_of(Vec2(center.x + radius, center.y + radius))
        radius_sq = radius * radius
        found = []
        for j in range(lo_j, hi_j + 1):
            for i in range(lo_i, hi_i + 1):
                for obj in self._cells.get((i, j), ()):
                    d = obj.ground_position - center
                    if d.norm_sq() <= radius_sq:
                        found.append(obj)
        return found

    def objects_in_annulus(
        self, center: Vec2, inner: float, outer: float
    ) -> List[SceneObject]:
        """Objects with ``inner < distance <= outer`` from ``center``.

        The far BE under cutoff ``r`` is the annulus ``(r, view_limit]``.
        """
        if inner < 0 or outer < inner:
            raise ValueError(f"invalid annulus [{inner}, {outer}]")
        inner_sq, outer_sq = inner * inner, outer * outer
        found = []
        for obj in self.objects_within(center, outer):
            d_sq = (obj.ground_position - center).norm_sq()
            if inner_sq < d_sq <= outer_sq:
                found.append(obj)
        return found

    def triangles_within(self, center: Vec2, radius: float) -> int:
        """Total triangle count within ``radius`` — the object-density
        measure the adaptive cutoff scheme samples (§4.3)."""
        return sum(obj.triangles for obj in self.objects_within(center, radius))

    def triangle_density(self, center: Vec2, probe_radius: float = 10.0) -> float:
        """Triangles per square metre around ``center`` (Fig. 8's x-axis)."""
        if probe_radius <= 0:
            raise ValueError("probe_radius must be positive")
        area = math.pi * probe_radius * probe_radius
        return self.triangles_within(center, probe_radius) / area

    # ------------------------------------------------------------------
    # Near / far BE split
    # ------------------------------------------------------------------

    def partition(
        self,
        viewpoint: Vec2,
        cutoff_radius: float,
        view_limit: Optional[float] = None,
    ) -> BePartition:
        """Split objects into near BE and far BE around a viewpoint.

        ``view_limit`` bounds the far set (server render distance); ``None``
        includes every object in the scene beyond the cutoff.
        """
        if cutoff_radius < 0:
            raise ValueError("cutoff_radius must be non-negative")
        near = []
        far = []
        if view_limit is None:
            candidates: Iterable[SceneObject] = self._objects
        else:
            if view_limit < cutoff_radius:
                raise ValueError("view_limit must be >= cutoff_radius")
            candidates = self.objects_within(viewpoint, view_limit)
        for obj in candidates:
            if obj.ground_distance_to(viewpoint) <= cutoff_radius:
                near.append(obj)
            else:
                far.append(obj)
        near.sort(key=lambda o: o.object_id)
        far.sort(key=lambda o: o.object_id)
        return BePartition(
            viewpoint=viewpoint,
            cutoff_radius=cutoff_radius,
            near=tuple(near),
            far=tuple(far),
        )

    def near_object_ids(
        self,
        viewpoint: Vec2,
        cutoff_radius: float,
        min_radius: float = 0.0,
    ) -> FrozenSet[int]:
        """Ids of the near-BE objects (frame-cache lookup criterion 3).

        ``min_radius`` drops objects too small to matter: an object whose
        bounding radius is far below the cutoff distance subtends a
        sub-pixel angle at the near/far boundary, so its presence in
        neither layer cannot produce a visible missing part.
        """
        if min_radius < 0:
            raise ValueError("min_radius must be non-negative")
        return frozenset(
            obj.object_id
            for obj in self.objects_within(viewpoint, cutoff_radius)
            if obj.radius >= min_radius
        )
