"""The nine VR games of the paper's study (Tables 2 and 3).

Each :class:`GameSpec` encodes the published facts — world dimension, genre,
foreground-interaction type, indoor/outdoor — plus the procedural knobs that
make the generated world behave like the paper's Unity scene: triangle
density structure (which drives the adaptive cutoff quadtree of Table 3 and
the cutoff-radius CDFs of Fig. 7), terrain, track geometry for the racing
games, and player locomotion parameters.

Grid pitch is 1/32 m everywhere, matching the paper's grid-point counts
(e.g. Viking Village: 187x130 m x 1024 points/m^2 = 24.9 M points); the
racing games additionally restrict reachability to the track band, which is
why their huge worlds have few reachable points (Racing Mountain: 7.7 M of
~1.2 G lattice points).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..geometry import Rect, Vec2, WorldGrid
from . import materials as mat
from .generator import DensityBlob, DensityField, KindMixture, generate_scene
from .objects import SceneObject, make_object
from .reachability import FullAreaMask, RoomMask, TrackMask, oval_track
from .scene import Scene, TerrainFn
from .terrain import FlatTerrain, RidgeTerrain, RollingTerrain

GRID_PITCH = 1.0 / 32.0  # metres; 1024 grid points per square metre

# A chunky procedural-terrain mesh tile (the CTS asset is a terrain shader
# whose patches are far heavier than individual props).
TERRAIN_TILE = mat.ObjectKind(
    "terrain_tile", (80_000, 250_000), (4.0, 8.0), 0.38, 0.35
)


@dataclass(frozen=True)
class PlayerProfile:
    """Locomotion parameters used by the trajectory generators."""

    speed: float  # m/s typical
    speed_jitter: float  # fractional speed variation
    eye_height: float  # metres above the foothold
    turn_rate: float  # rad/s max heading change

    def __post_init__(self) -> None:
        if self.speed <= 0 or self.eye_height < 0 or self.turn_rate <= 0:
            raise ValueError(f"invalid player profile: {self}")


@dataclass(frozen=True)
class GameSpec:
    """Static description of one of the nine study games."""

    name: str
    title: str
    genre: str
    fi_description: str
    indoor: bool
    dimensions: Tuple[float, float]  # metres (Table 3)
    seed: int
    base_density: float  # tri/m^2 away from features
    blob_count: int
    blob_sigma: Tuple[float, float]
    blob_amplitude: Tuple[float, float]
    mixture_kinds: Tuple[str, ...]
    mixture_weights: Tuple[float, ...]
    player: PlayerProfile = field(
        default_factory=lambda: PlayerProfile(2.0, 0.25, 1.7, 1.2)
    )
    has_track: bool = False
    track_margin: float = 0.0
    track_half_width: float = 4.0
    track_band_width: float = 30.0
    track_band_density: float = 0.0
    track_blob_arcs: Tuple[float, ...] = ()  # arc fractions with forests etc.
    track_blob_amplitude: float = 0.0
    track_blob_sigma: float = 30.0
    fi_triangles: int = 400_000  # avatar/vehicle FI render load per player
    terrain_kind: str = "rolling"  # "flat" | "rolling" | "ridge"
    clutter_kinds: Tuple[str, ...] = ("grass", "rock")
    clutter_weights: Tuple[float, ...] = (0.7, 0.3)
    clutter_per_m2: float = 0.0  # light near-player props per square metre
    rim_mountains: int = 0  # distant scenery meshes ringing the world
    rim_ring_fraction: float = 0.88  # ring radius as a fraction of world half-size

    @property
    def bounds(self) -> Rect:
        w, h = self.dimensions
        return Rect(0.0, 0.0, w, h)

    @property
    def area(self) -> float:
        w, h = self.dimensions
        return w * h


@dataclass
class GameWorld:
    """A fully built game: scene + grid + masks, ready for the pipeline."""

    spec: GameSpec
    scene: Scene
    grid: WorldGrid
    terrain: TerrainFn
    track: Optional[TrackMask]
    scale: float  # 1.0 = paper-scale dimensions

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def bounds(self) -> Rect:
        return self.scene.bounds

    def spawn_points(self, count: int) -> List[Vec2]:
        """Starting positions for ``count`` players, clustered together the
        way the paper observes multiplayer groups travel (§4.1)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if self.track is not None:
            spacing = 8.0 * self.scale
            return [self.track.point_at(k * spacing) for k in range(count)]
        center = self.bounds.center
        offset = min(2.0, self.bounds.width / 8.0)
        points = []
        for k in range(count):
            angle = 2.0 * math.pi * k / max(count, 1)
            candidate = Vec2(
                center.x + offset * math.cos(angle),
                center.y + offset * math.sin(angle),
            )
            points.append(self.bounds.clamp(candidate))
        return points

    def grid_point_count(self, rng: Optional[np.random.Generator] = None) -> int:
        """Estimated reachable grid points (Table 3's "Grid Points")."""
        rng = rng if rng is not None else np.random.default_rng(0)
        return self.grid.count_reachable(rng)


def _terrain_for(spec: GameSpec, scale: float) -> TerrainFn:
    if spec.terrain_kind == "flat":
        return FlatTerrain()
    if spec.terrain_kind == "ridge":
        w, h = spec.dimensions
        return RidgeTerrain(
            valley_center=Vec2(w * scale / 2, h * scale / 2),
            valley_radius=min(w, h) * scale * 0.32,
        )
    return RollingTerrain(phase_seed=spec.seed)


def _mixture_for(spec: GameSpec) -> KindMixture:
    kinds = tuple(
        TERRAIN_TILE if name == "terrain_tile" else mat.kind(name)
        for name in spec.mixture_kinds
    )
    return KindMixture(kinds=kinds, weights=spec.mixture_weights)


def _perimeter_walls(
    bounds: Rect, terrain: TerrainFn, rng: np.random.Generator, start_id: int
) -> List[SceneObject]:
    """Wall panels every ~3 m along an indoor room's perimeter."""
    walls = []
    next_id = start_id
    spacing = 3.0
    perimeter_points: List[Vec2] = []
    x = bounds.x_min
    while x <= bounds.x_max:
        perimeter_points.append(Vec2(x, bounds.y_min))
        perimeter_points.append(Vec2(x, bounds.y_max))
        x += spacing
    y = bounds.y_min
    while y <= bounds.y_max:
        perimeter_points.append(Vec2(bounds.x_min, y))
        perimeter_points.append(Vec2(bounds.x_max, y))
        y += spacing
    for position in perimeter_points:
        walls.append(
            make_object(next_id, mat.WALL_PANEL, position, terrain(position), rng)
        )
        next_id += 1
    return walls


def build_game(name: str, scale: float = 1.0) -> GameWorld:
    """Construct a game world.

    ``scale`` < 1 shrinks the world's linear dimensions (and proportionally
    the blob count) for fast tests; benchmarks use ``scale=1.0``.
    Everything is deterministic in (name, scale).
    """
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    spec = game_spec(name)
    w = spec.dimensions[0] * scale
    h = spec.dimensions[1] * scale
    bounds = Rect(0.0, 0.0, w, h)
    terrain = _terrain_for(spec, scale)
    rng = np.random.default_rng(spec.seed)

    track: Optional[TrackMask] = None
    keep_clear = None
    if spec.has_track:
        waypoints = oval_track(bounds, margin=spec.track_margin * scale)
        track = TrackMask(waypoints, half_width=spec.track_half_width)
        keep_clear = track  # nothing is placed on the drivable surface

    blobs = DensityField.random_blobs(
        bounds,
        max(1, int(round(spec.blob_count * scale))),
        spec.blob_sigma,
        spec.blob_amplitude,
        rng,
    )
    if track is not None and spec.track_blob_amplitude > 0:
        total = track.length()
        for arc_fraction in spec.track_blob_arcs:
            arc = arc_fraction * total
            heading = track.heading_at(arc)
            # Forest / stadium clusters sit just off the track edge.
            offset = Vec2.from_angle(
                heading + math.pi / 2, spec.track_half_width + spec.track_blob_sigma
            )
            blobs.append(
                DensityBlob(
                    center=track.point_at(arc) + offset,
                    sigma=spec.track_blob_sigma,
                    amplitude=spec.track_blob_amplitude,
                )
            )

    density = DensityField(
        base=spec.base_density,
        blobs=blobs,
        track=track,
        track_band_width=spec.track_band_width,
        track_band_density=spec.track_band_density,
    )
    clutter_mixture = None
    clutter_mask = None
    if spec.clutter_per_m2 > 0:
        clutter_mixture = KindMixture(
            kinds=tuple(mat.kind(n) for n in spec.clutter_kinds),
            weights=spec.clutter_weights,
        )
        if track is not None:
            # Track-side clutter only: on the verge, never on the asphalt.
            verge_inner = spec.track_half_width
            verge_outer = spec.track_band_width

            def clutter_mask(p, _t=track, _i=verge_inner, _o=verge_outer):
                return _i < _t.distance_to_centerline(p) <= _o

    scene = generate_scene(
        bounds=bounds,
        terrain=terrain,
        density=density,
        mixture=_mixture_for(spec),
        seed=spec.seed + 1,
        keep_clear=keep_clear,
        clutter_mixture=clutter_mixture,
        clutter_per_m2=spec.clutter_per_m2,
        clutter_mask=clutter_mask,
    )
    scene = Scene(
        bounds, scene.objects, terrain, ground_seed=spec.seed
    )
    if spec.indoor:
        walls = _perimeter_walls(
            bounds, terrain, np.random.default_rng(spec.seed + 2), len(scene)
        )
        scene = Scene(bounds, scene.objects + walls, terrain, ground_seed=spec.seed)
    if spec.rim_mountains > 0:
        mountain_rng = np.random.default_rng(spec.seed + 3)
        ring_radius = min(w, h) / 2.0 * spec.rim_ring_fraction
        center = bounds.center
        mountains = []
        for k in range(spec.rim_mountains):
            angle = 2.0 * math.pi * k / spec.rim_mountains
            position = bounds.clamp(
                Vec2(
                    center.x + ring_radius * math.cos(angle),
                    center.y + ring_radius * math.sin(angle),
                )
            )
            mountains.append(
                make_object(
                    len(scene) + k, mat.MOUNTAIN, position, terrain(position), mountain_rng
                )
            )
        scene = Scene(
            bounds, scene.objects + mountains, terrain, ground_seed=spec.seed
        )

    if spec.has_track:
        mask: Callable[[Vec2], bool] = track
    elif spec.indoor:
        mask = RoomMask(bounds)
    else:
        mask = FullAreaMask(bounds)
    grid = WorldGrid(bounds, GRID_PITCH, reachable=mask)
    return GameWorld(
        spec=spec, scene=scene, grid=grid, terrain=terrain, track=track, scale=scale
    )


# ----------------------------------------------------------------------
# The nine game specs (Table 2 genres; Table 3 dimensions)
# ----------------------------------------------------------------------

_WALK = PlayerProfile(speed=2.0, speed_jitter=0.25, eye_height=1.7, turn_rate=1.2)
_RUN = PlayerProfile(speed=3.0, speed_jitter=0.30, eye_height=1.7, turn_rate=1.5)
_DRIVE = PlayerProfile(speed=28.0, speed_jitter=0.15, eye_height=1.2, turn_rate=0.8)
_INDOOR = PlayerProfile(speed=1.2, speed_jitter=0.20, eye_height=1.7, turn_rate=1.0)

_SPECS: Dict[str, GameSpec] = {}


def _spec(s: GameSpec) -> GameSpec:
    if s.name in _SPECS:
        raise ValueError(f"duplicate game spec {s.name}")
    _SPECS[s.name] = s
    return s


VIKING = _spec(GameSpec(
    name="viking",
    title="Viking Village",
    genre="competing shooting",
    fi_description="roaming and killing enemies",
    indoor=False,
    dimensions=(187.0, 130.0),
    seed=11,
    # Strongly non-uniform density: mead halls and packed hut clusters over
    # a vegetated floor -> deep quadtree with many leaf regions (Table 3).
    base_density=850.0,
    blob_count=30,
    blob_sigma=(6.0, 16.0),
    blob_amplitude=(1_000.0, 3_600.0),
    mixture_kinds=("tree", "hut", "longhouse", "hall", "rock", "crate", "fence"),
    mixture_weights=(0.29, 0.23, 0.14, 0.02, 0.12, 0.12, 0.08),
    player=_RUN,
    clutter_kinds=("grass", "rock", "crate"),
    clutter_weights=(0.6, 0.25, 0.15),
    clutter_per_m2=0.06,
))

CTS = _spec(GameSpec(
    name="cts",
    title="CTS Procedural World",
    genre="group adventure/mission",
    fi_description="walking and jumping",
    indoor=False,
    dimensions=(512.0, 512.0),
    seed=23,
    # Heavy terrain-shader tiles with gentle large-scale variation ->
    # shallow, even quadtree (235 leaves at depth ~4).
    base_density=460.0,
    blob_count=10,
    blob_sigma=(70.0, 140.0),
    blob_amplitude=(100.0, 300.0),
    mixture_kinds=("terrain_tile", "tree", "rock"),
    mixture_weights=(0.55, 0.30, 0.15),
    player=_WALK,
    clutter_kinds=("grass", "bush", "rock"),
    clutter_weights=(0.5, 0.3, 0.2),
    clutter_per_m2=0.008,
))

RACING = _spec(GameSpec(
    name="racing",
    title="Racing Mountain",
    genre="racing/chasing",
    fi_description="racing car movement",
    indoor=False,
    dimensions=(1090.0, 1096.0),
    seed=37,
    base_density=2.0,
    blob_count=6,
    blob_sigma=(60.0, 120.0),
    blob_amplitude=(20.0, 80.0),
    mixture_kinds=("grove", "tree", "rock", "barrier", "billboard"),
    mixture_weights=(0.10, 0.40, 0.15, 0.20, 0.15),
    player=_DRIVE,
    has_track=True,
    track_margin=280.0,
    track_half_width=5.0,
    track_band_width=20.0,
    track_band_density=12.0,
    # A few sections run right past a forest -> small cutoffs there,
    # huge cutoffs elsewhere (Fig. 7: radii spread 10-180 m).
    track_blob_arcs=(0.14, 0.55),
    track_blob_amplitude=8_000.0,
    track_blob_sigma=16.0,
    fi_triangles=600_000,
    terrain_kind="ridge",
    rim_mountains=45,
    rim_ring_fraction=0.85,
    clutter_kinds=("grass", "rock", "barrier"),
    clutter_weights=(0.5, 0.3, 0.2),
    clutter_per_m2=0.0012,
))

DS = _spec(GameSpec(
    name="ds",
    title="DS Racing",
    genre="racing/chasing",
    fi_description="racing car movement",
    indoor=False,
    dimensions=(1286.0, 361.0),
    seed=41,
    base_density=2.0,
    blob_count=4,
    blob_sigma=(40.0, 90.0),
    blob_amplitude=(15.0, 60.0),
    mixture_kinds=("tree", "grove", "barrier", "billboard", "grandstand", "person"),
    mixture_weights=(0.20, 0.35, 0.15, 0.10, 0.08, 0.12),
    player=_DRIVE,
    has_track=True,
    track_margin=60.0,
    track_half_width=5.0,
    track_band_width=25.0,
    track_band_density=80.0,
    # Start/finish straight is packed with stadiums and people (S4.4:
    # "regions near start/end locations of racing are densely populated").
    track_blob_arcs=(0.0, 0.015, 0.985),
    track_blob_amplitude=12_000.0,
    track_blob_sigma=12.0,
    fi_triangles=600_000,
    clutter_kinds=("grass", "barrier", "person"),
    clutter_weights=(0.45, 0.35, 0.2),
    clutter_per_m2=0.0012,
))

FPS = _spec(GameSpec(
    name="fps",
    title="FPS Arena",
    genre="competing shooting",
    fi_description="roaming and killing enemies",
    indoor=False,
    dimensions=(71.0, 70.0),
    seed=53,
    base_density=900.0,
    blob_count=20,
    blob_sigma=(2.5, 6.0),
    blob_amplitude=(4_000.0, 15_000.0),
    mixture_kinds=("crate", "house", "tower", "fence", "rock"),
    mixture_weights=(0.30, 0.22, 0.13, 0.20, 0.15),
    player=_RUN,
    clutter_kinds=("crate", "rock", "grass"),
    clutter_weights=(0.4, 0.3, 0.3),
    clutter_per_m2=0.05,
))

SOCCER = _spec(GameSpec(
    name="soccer",
    title="Soccer Field",
    genre="group adventure/mission",
    fi_description="moving and hitting balls",
    indoor=False,
    dimensions=(104.0, 140.0),
    seed=61,
    # An open pitch ringed by stands: density concentrated at the borders.
    base_density=300.0,
    blob_count=14,
    blob_sigma=(8.0, 16.0),
    blob_amplitude=(1_200.0, 4_500.0),
    mixture_kinds=("grandstand", "billboard", "fence", "tree"),
    mixture_weights=(0.28, 0.22, 0.30, 0.20),
    player=_RUN,
    clutter_kinds=("grass", "fence"),
    clutter_weights=(0.75, 0.25),
    clutter_per_m2=0.04,
))

POOL = _spec(GameSpec(
    name="pool",
    title="Pool Hall",
    genre="static sports",
    fi_description="walking and hitting balls",
    indoor=True,
    dimensions=(10.0, 13.0),
    seed=71,
    base_density=55_000.0,
    blob_count=3,
    blob_sigma=(1.5, 3.0),
    blob_amplitude=(60_000.0, 160_000.0),
    mixture_kinds=("pool_table", "chair", "lamp", "bookcase"),
    mixture_weights=(0.30, 0.30, 0.25, 0.15),
    player=_INDOOR,
    fi_triangles=200_000,
    terrain_kind="flat",
    clutter_kinds=("chair", "lamp"),
    clutter_weights=(0.6, 0.4),
    clutter_per_m2=0.15,
))

BOWLING = _spec(GameSpec(
    name="bowling",
    title="Bowling Alley",
    genre="static sports",
    fi_description="walking and throwing balls",
    indoor=True,
    dimensions=(34.0, 41.0),
    seed=83,
    base_density=10_000.0,
    blob_count=4,
    blob_sigma=(3.0, 6.0),
    blob_amplitude=(15_000.0, 45_000.0),
    mixture_kinds=("bowling_lane", "chair", "table", "lamp"),
    mixture_weights=(0.35, 0.25, 0.22, 0.18),
    player=_INDOOR,
    fi_triangles=200_000,
    terrain_kind="flat",
    clutter_kinds=("chair", "crate"),
    clutter_weights=(0.6, 0.4),
    clutter_per_m2=0.08,
))

CORRIDOR = _spec(GameSpec(
    name="corridor",
    title="Corridor",
    genre="group adventure",
    fi_description="roaming",
    indoor=True,
    dimensions=(50.0, 30.0),
    seed=97,
    base_density=10_000.0,
    blob_count=6,
    blob_sigma=(2.5, 5.0),
    blob_amplitude=(15_000.0, 45_000.0),
    mixture_kinds=("pillar", "bookcase", "table", "lamp", "chair"),
    mixture_weights=(0.28, 0.22, 0.20, 0.15, 0.15),
    player=_INDOOR,
    fi_triangles=250_000,
    terrain_kind="flat",
    clutter_kinds=("crate", "chair", "lamp"),
    clutter_weights=(0.4, 0.35, 0.25),
    clutter_per_m2=0.10,
))

# The three headline evaluation apps (§7) and the full study set (§4).
HEADLINE_GAMES = ("viking", "cts", "racing")
OUTDOOR_GAMES = ("racing", "ds", "viking", "cts", "fps", "soccer")
INDOOR_GAMES = ("pool", "bowling", "corridor")
ALL_GAMES = OUTDOOR_GAMES + INDOOR_GAMES


def game_spec(name: str) -> GameSpec:
    """Look up a game spec by short name (see ``ALL_GAMES``)."""
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(f"unknown game {name!r}; known: {sorted(_SPECS)}") from None


@lru_cache(maxsize=None)
def load_game(name: str, scale: float = 1.0) -> GameWorld:
    """Memoized :func:`build_game`.

    World construction is deterministic, and benchmarks repeatedly need the
    same worlds; treat the returned :class:`GameWorld` as read-only.
    """
    return build_game(name, scale=scale)
