"""Reachability masks: where a player can actually stand.

Table 3's grid-point counts are counts of *reachable* locations — Racing
Mountain spans 1090x1096 m but has only 7.7 M grid points because players
stay on the track.  A mask is a predicate ``Vec2 -> bool`` plugged into
:class:`repro.geometry.WorldGrid`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..geometry import Rect, Vec2


@dataclass(frozen=True)
class FullAreaMask:
    """Every point inside the world rectangle is reachable."""

    bounds: Rect

    def __call__(self, point: Vec2) -> bool:
        return self.bounds.contains_closed(point)


class TrackMask:
    """Reachable band around a closed or open polyline track.

    Used by the racing games: the player (car) can occupy points within
    ``half_width`` metres of the track centreline.
    """

    def __init__(
        self, waypoints: Sequence[Vec2], half_width: float, closed: bool = True
    ) -> None:
        if len(waypoints) < 2:
            raise ValueError("a track needs at least 2 waypoints")
        if half_width <= 0:
            raise ValueError("half_width must be positive")
        self.waypoints = list(waypoints)
        self.half_width = half_width
        self.closed = closed

    def _segments(self) -> List[tuple]:
        pts = self.waypoints
        segs = list(zip(pts, pts[1:]))
        if self.closed:
            segs.append((pts[-1], pts[0]))
        return segs

    def distance_to_centerline(self, point: Vec2) -> float:
        """Shortest distance from ``point`` to the track centreline."""
        best = math.inf
        for a, b in self._segments():
            ab = b - a
            ab_len_sq = ab.norm_sq()
            if ab_len_sq == 0:
                dist = point.distance_to(a)
            else:
                t = max(0.0, min(1.0, (point - a).dot(ab) / ab_len_sq))
                dist = point.distance_to(a + ab * t)
            best = min(best, dist)
        return best

    def __call__(self, point: Vec2) -> bool:
        return self.distance_to_centerline(point) <= self.half_width

    def length(self) -> float:
        """Total centreline length."""
        return sum(a.distance_to(b) for a, b in self._segments())

    def point_at(self, arc: float) -> Vec2:
        """Point at arc-length ``arc`` along the centreline (wraps if closed)."""
        total = self.length()
        if total == 0:
            return self.waypoints[0]
        if self.closed:
            arc = arc % total
        else:
            arc = max(0.0, min(arc, total))
        travelled = 0.0
        for a, b in self._segments():
            seg_len = a.distance_to(b)
            if travelled + seg_len >= arc and seg_len > 0:
                return a.lerp(b, (arc - travelled) / seg_len)
            travelled += seg_len
        return self.waypoints[0] if self.closed else self.waypoints[-1]

    def heading_at(self, arc: float) -> float:
        """Track direction (radians) at arc-length ``arc``."""
        eps = max(0.5, self.length() * 1e-4)
        ahead = self.point_at(arc + eps)
        here = self.point_at(arc)
        d = ahead - here
        if d.norm() == 0:
            return 0.0
        return d.angle()


@dataclass(frozen=True)
class RoomMask:
    """Reachable interior of an indoor game, inset from the walls."""

    bounds: Rect
    wall_inset: float = 0.5

    def __post_init__(self) -> None:
        if self.wall_inset < 0:
            raise ValueError("wall_inset must be non-negative")

    def __call__(self, point: Vec2) -> bool:
        return (
            self.bounds.x_min + self.wall_inset <= point.x <= self.bounds.x_max - self.wall_inset
            and self.bounds.y_min + self.wall_inset <= point.y <= self.bounds.y_max - self.wall_inset
        )


def oval_track(bounds: Rect, margin: float, waypoint_count: int = 32) -> List[Vec2]:
    """Waypoints of an oval racing track inscribed in the world bounds."""
    if waypoint_count < 3:
        raise ValueError("waypoint_count must be >= 3")
    cx, cy = bounds.center.x, bounds.center.y
    rx = bounds.width / 2 - margin
    ry = bounds.height / 2 - margin
    if rx <= 0 or ry <= 0:
        raise ValueError("margin too large for bounds")
    return [
        Vec2(
            cx + rx * math.cos(2 * math.pi * k / waypoint_count),
            cy + ry * math.sin(2 * math.pi * k / waypoint_count),
        )
        for k in range(waypoint_count)
    ]
