"""Seeded, deterministic WiFi-link impairment: bursty loss, jitter, dips.

The clean :class:`~repro.net.link.WifiLink` reproduces the paper's
testbed on a good day; this module models the bad days that dominate real
deployments (OpenUVR names WiFi interference as the primary failure mode
for untethered VR streaming).  Three composable mechanisms:

* **Bursty packet loss** — a Gilbert–Elliott two-state Markov chain
  walked per MTU-sized segment.  Entering the *bad* state drops the
  segment; each loss *burst* costs one TCP-like retransmit timeout whose
  backoff doubles for back-to-back bursts (capped), and every lost
  segment is retransmitted, inflating the bytes actually on the air.
* **Latency jitter** — a log-normal extra delay per transfer
  (``median * exp(sigma * N(0,1))``), the classic heavy-tailed shape of
  wireless MAC service times.
* **Capacity-dip episodes** — scheduled interference windows during which
  the medium serves at a fraction of its nominal capacity (and may carry
  extra loss).  A transfer starting inside a window is slowed for its
  whole life, which is exactly how a TCP flow that enters an interference
  burst behaves.
* **Rate traces** — a :class:`RateTrace` is a piecewise-constant capacity
  factor over the whole session: sustained, *time-varying* link rate
  (cellular walks, bufferbloat ramps, Wi-Fi contention square waves)
  rather than the episodic dips above.  Traces load from a file or come
  from named seeded generators, and compose multiplicatively with any
  active dip window — contention on top of an interference burst
  compounds, as it does on a real medium.

Determinism: one ``random.Random(seed)`` consumed in transfer-submission
order, and trace generators draw their entire segment sequence from a
dedicated ``random.Random(seed)`` at construction time (sampling a trace
consumes no randomness).  The simulator resumes same-timestamp processes
in FIFO order, so a (schedule, seed) pair replays bit-identically — no
wall-clock anywhere.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class DipEpisode:
    """One scheduled interference window on the medium."""

    start_ms: float
    end_ms: float
    capacity_factor: float = 1.0  # fraction of nominal capacity available
    loss_rate: float = 0.0  # extra packet loss while the window is active

    def __post_init__(self) -> None:
        if self.start_ms < 0 or self.end_ms <= self.start_ms:
            raise ValueError("dip window must satisfy 0 <= start < end")
        if not 0.0 < self.capacity_factor <= 1.0:
            raise ValueError("capacity_factor must be in (0, 1]")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")

    def active_at(self, now_ms: float) -> bool:
        """Whether the window covers the instant ``now_ms``."""
        return self.start_ms <= now_ms < self.end_ms


#: Named synthetic rate-trace generators (see :meth:`RateTrace.named`).
TRACE_PROFILES = ("cellular", "bufferbloat", "contention")


@dataclass(frozen=True)
class RateTrace:
    """Piecewise-constant link capacity factor over time.

    ``segments`` is a time-sorted tuple of ``(start_ms, capacity_factor)``
    pairs; each factor applies from its start until the next segment's
    start (the last segment extends forever).  Factors are fractions of
    nominal capacity in ``(0, 1]``.  Before the first segment the link
    runs at nominal capacity.

    Traces are immutable and sampled with a binary search — replaying the
    same trace is free of any hidden state.
    """

    segments: Tuple[Tuple[float, float], ...]
    name: str = "custom"

    # Derived, cached sample index (tuples; kept off the dataclass eq).
    _starts: Tuple[float, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("trace must contain at least one segment")
        previous = -1.0
        for start_ms, factor in self.segments:
            if start_ms < 0:
                raise ValueError("segment start_ms must be non-negative")
            if start_ms <= previous:
                raise ValueError(
                    "segment starts must be strictly increasing"
                )
            if not 0.0 < factor <= 1.0:
                raise ValueError(
                    f"capacity factor must be in (0, 1], got {factor}"
                )
            previous = start_ms
        object.__setattr__(
            self, "_starts", tuple(s for s, _ in self.segments)
        )

    def factor_at(self, now_ms: float) -> float:
        """Capacity fraction the trace dictates at ``now_ms``."""
        index = bisect_right(self._starts, now_ms) - 1
        if index < 0:
            return 1.0  # before the trace starts: nominal capacity
        return self.segments[index][1]

    @property
    def min_factor(self) -> float:
        """Deepest capacity reduction anywhere in the trace."""
        return min(factor for _, factor in self.segments)

    def episodes(self, threshold: float = 0.999) -> Tuple[Tuple[float, float], ...]:
        """Degraded intervals ``(start_ms, end_ms)`` where factor < threshold.

        The last episode's end is the final segment boundary (an open-ended
        degraded tail reports its start segment's start as both edges of
        knowledge — callers treat ``end_ms == inf``).  Used by benchmarks
        to measure recovery time after each trace episode.
        """
        episodes = []
        open_start: Optional[float] = None
        for start_ms, factor in self.segments:
            if factor < threshold and open_start is None:
                open_start = start_ms
            elif factor >= threshold and open_start is not None:
                episodes.append((open_start, start_ms))
                open_start = None
        if open_start is not None:
            episodes.append((open_start, float("inf")))
        return tuple(episodes)

    # ------------------------------------------------------------------
    # Construction: trace files and named synthetic generators
    # ------------------------------------------------------------------

    @classmethod
    def from_file(cls, path: str) -> "RateTrace":
        """Load ``start_ms capacity_factor`` rows from a trace file.

        Blank lines and ``#`` comments are skipped.  Rows may be separated
        by whitespace or commas.  A malformed row fails with a
        line-numbered message — never a bare stack trace.
        """
        segments = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as exc:
            raise ValueError(f"cannot read trace file {path!r}: {exc}") from exc
        for lineno, raw in enumerate(lines, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.replace(",", " ").split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}: line {lineno}: expected "
                    f"'start_ms capacity_factor', got {raw.strip()!r}"
                )
            try:
                start_ms, factor = float(parts[0]), float(parts[1])
            except ValueError:
                raise ValueError(
                    f"{path}: line {lineno}: non-numeric value in "
                    f"{raw.strip()!r}"
                ) from None
            segments.append((start_ms, factor))
        if not segments:
            raise ValueError(f"{path}: trace file contains no segments")
        try:
            return cls(segments=tuple(segments), name=f"file:{path}")
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from None

    @classmethod
    def cellular(
        cls,
        seed: int = 0,
        duration_ms: float = 20_000.0,
        step_ms: float = 500.0,
        floor: float = 0.12,
    ) -> "RateTrace":
        """Seeded random-walk capacity, the rapidly-varying cellular link.

        A multiplicative walk over ``step_ms`` epochs, clamped to
        ``[floor, 1]`` — the shape of the 6.829 cloud-gaming pset's
        Mahimahi cellular traces: long coherent fades with fast wiggle.
        """
        if duration_ms <= 0 or step_ms <= 0:
            raise ValueError("duration_ms and step_ms must be positive")
        if not 0.0 < floor <= 1.0:
            raise ValueError("floor must be in (0, 1]")
        rng = random.Random(seed)
        segments = []
        factor = 1.0
        t = 0.0
        while t < duration_ms:
            factor *= math.exp(rng.gauss(-0.08, 0.35))
            factor = min(1.0, max(floor, factor))
            segments.append((t, factor))
            t += step_ms
        return cls(segments=tuple(segments), name=f"cellular(seed={seed})")

    @classmethod
    def bufferbloat(
        cls,
        duration_ms: float = 20_000.0,
        ramp_start_frac: float = 0.2,
        ramp_end_frac: float = 0.55,
        recover_frac: float = 0.8,
        trough: float = 0.15,
        step_ms: float = 250.0,
    ) -> "RateTrace":
        """Deterministic capacity ramp: slow decay to a trough, then recovery.

        The effective-rate shape of a bufferbloat event — queues fill
        gradually, goodput decays, then the queue drains and the link
        snaps back.
        """
        if duration_ms <= 0 or step_ms <= 0:
            raise ValueError("duration_ms and step_ms must be positive")
        if not 0.0 < trough <= 1.0:
            raise ValueError("trough must be in (0, 1]")
        if not 0.0 <= ramp_start_frac < ramp_end_frac <= recover_frac <= 1.0:
            raise ValueError("ramp fractions must be ordered in [0, 1]")
        ramp_start = duration_ms * ramp_start_frac
        ramp_end = duration_ms * ramp_end_frac
        recover = duration_ms * recover_frac
        segments = [(0.0, 1.0)]
        t = step_ms * math.ceil(ramp_start / step_ms)
        if t <= 0.0:
            t = step_ms
        while t < duration_ms:
            if t < ramp_end:
                span = max(ramp_end - ramp_start, step_ms)
                frac = (t - ramp_start) / span
                factor = 1.0 - (1.0 - trough) * min(1.0, frac)
            elif t < recover:
                factor = trough
            else:
                factor = 1.0
            segments.append((t, max(trough, min(1.0, factor))))
            t += step_ms
        return cls(segments=tuple(segments), name="bufferbloat")

    @classmethod
    def contention(
        cls,
        duration_ms: float = 20_000.0,
        period_ms: float = 2_000.0,
        duty: float = 0.5,
        low: float = 0.25,
    ) -> "RateTrace":
        """Square-wave capacity: a contending Wi-Fi station toggling on/off.

        Each period spends ``duty`` of its length at full capacity and the
        rest at ``low`` — the alternating medium share of a periodic bulk
        transfer on the same channel.
        """
        if duration_ms <= 0 or period_ms <= 0:
            raise ValueError("duration_ms and period_ms must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must be in (0, 1)")
        if not 0.0 < low <= 1.0:
            raise ValueError("low must be in (0, 1]")
        segments = []
        t = 0.0
        while t < duration_ms:
            segments.append((t, 1.0))
            segments.append((t + period_ms * duty, low))
            t += period_ms
        return cls(segments=tuple(segments), name="contention")

    @classmethod
    def named(
        cls, profile: str, seed: int = 0, duration_ms: float = 20_000.0
    ) -> "RateTrace":
        """Build one of the committed synthetic profiles by name."""
        if profile == "cellular":
            return cls.cellular(seed=seed, duration_ms=duration_ms)
        if profile == "bufferbloat":
            return cls.bufferbloat(duration_ms=duration_ms)
        if profile == "contention":
            return cls.contention(duration_ms=duration_ms)
        raise ValueError(
            f"unknown trace profile {profile!r}; "
            f"use one of {TRACE_PROFILES} or file:PATH"
        )


@dataclass(frozen=True)
class ImpairmentConfig:
    """Knobs of the impairment model; the default is the identity.

    ``loss_rate`` is the *long-run* segment loss probability; the
    Gilbert–Elliott transition probabilities are derived from it and
    ``burstiness`` (the probability of staying in the bad state, i.e.
    the mean bad burst is ``1 / (1 - burstiness)`` segments).
    """

    loss_rate: float = 0.0
    burstiness: float = 0.85
    jitter_median_ms: float = 0.0
    jitter_sigma: float = 0.35
    rto_ms: float = 40.0  # base retransmit timeout per loss burst
    rto_backoff_cap: int = 3  # max doublings for back-to-back bursts
    mtu_bytes: int = 1448  # segment size the loss chain is walked over
    seed: int = 0
    dips: Tuple[DipEpisode, ...] = ()
    rate_trace: Optional[RateTrace] = None  # time-varying capacity

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.burstiness < 1.0:
            raise ValueError("burstiness must be in [0, 1)")
        if self.jitter_median_ms < 0 or self.jitter_sigma < 0:
            raise ValueError("jitter parameters must be non-negative")
        if self.rto_ms < 0 or self.rto_backoff_cap < 0:
            raise ValueError("rto parameters must be non-negative")
        if self.mtu_bytes < 1:
            raise ValueError("mtu_bytes must be >= 1")

    @classmethod
    def bursty(cls, loss_rate: float, seed: int = 0,
               dips: Tuple[DipEpisode, ...] = ()) -> "ImpairmentConfig":
        """Impaired-WiFi preset: bursty loss plus mild heavy-tail jitter."""
        return cls(
            loss_rate=loss_rate,
            jitter_median_ms=0.4 if loss_rate > 0 else 0.0,
            seed=seed,
            dips=dips,
        )

    @property
    def is_identity(self) -> bool:
        """True when the config perturbs nothing (clean-link equivalent)."""
        return (
            self.loss_rate == 0.0
            and self.jitter_median_ms == 0.0
            and not self.dips
            and self.rate_trace is None
        )


@dataclass(frozen=True)
class TransferImpairment:
    """What the model decided for one transfer at submission time."""

    extra_latency_ms: float  # retransmit timeouts + jitter, after service
    work_scale: float  # multiplier on the submitted work (>= 1.0)
    lost_segments: int
    bursts: int


@dataclass
class ImpairmentStats:
    """Running totals over a link's lifetime (benchmark reporting)."""

    transfers: int = 0
    segments: int = 0
    lost_segments: int = 0
    bursts: int = 0
    extra_latency_ms: float = 0.0
    dip_transfers: int = 0

    @property
    def observed_loss_rate(self) -> float:
        """Fraction of segments the chain actually dropped."""
        if self.segments == 0:
            return 0.0
        return self.lost_segments / self.segments


class LinkImpairment:
    """Stateful sampler applying an :class:`ImpairmentConfig` to transfers.

    The Gilbert–Elliott chain state persists *across* transfers, so a bad
    burst straddling two frames hits both — that temporal correlation is
    what makes bursty loss qualitatively different from i.i.d. loss.
    """

    def __init__(self, config: ImpairmentConfig) -> None:
        self.config = config
        self.stats = ImpairmentStats()
        self._rng = random.Random(config.seed)
        self._bad = False  # Gilbert-Elliott chain state

    def capacity_factor(self, now_ms: float) -> float:
        """Medium capacity fraction at ``now_ms``.

        Dip windows stack by min (overlapping interference bursts do not
        compound below the worst one); a rate trace then *multiplies* in —
        contention riding on top of an interference burst compounds, as
        two independent mechanisms do on a real medium.
        """
        factor = 1.0
        for dip in self.config.dips:
            if dip.active_at(now_ms):
                factor = min(factor, dip.capacity_factor)
        trace = self.config.rate_trace
        if trace is not None:
            factor *= trace.factor_at(now_ms)
        return factor

    def _loss_rate_at(self, now_ms: float) -> float:
        loss = self.config.loss_rate
        for dip in self.config.dips:
            if dip.active_at(now_ms):
                loss = max(loss, dip.loss_rate)
        return loss

    def sample(self, now_ms: float, size_bytes: float) -> TransferImpairment:
        """Draw one transfer's impairment (consumes the seeded RNG)."""
        cfg = self.config
        segments = max(1, math.ceil(size_bytes / cfg.mtu_bytes))
        loss = self._loss_rate_at(now_ms)
        lost = 0
        bursts = 0
        penalty_ms = 0.0
        if loss > 0.0:
            # Simplified Gilbert model: every bad-state segment is dropped.
            # Stationary bad probability equals the target loss rate.
            p_bg = 1.0 - cfg.burstiness
            p_gb = min(1.0, loss * p_bg / max(1e-12, 1.0 - loss))
            in_burst = False
            for _ in range(segments):
                if self._bad:
                    lost += 1
                    if not in_burst:
                        # A fresh burst costs one RTO; consecutive bursts
                        # escalate the backoff like TCP's timer doubling.
                        exponent = min(bursts, cfg.rto_backoff_cap)
                        penalty_ms += cfg.rto_ms * (2.0 ** exponent)
                        bursts += 1
                        in_burst = True
                    self._bad = self._rng.random() < cfg.burstiness
                else:
                    in_burst = False
                    self._bad = self._rng.random() < p_gb
        jitter_ms = 0.0
        if cfg.jitter_median_ms > 0.0:
            jitter_ms = cfg.jitter_median_ms * math.exp(
                cfg.jitter_sigma * self._rng.gauss(0.0, 1.0)
            )
        factor = self.capacity_factor(now_ms)
        # Lost segments are retransmitted (more bytes on the air); a dip
        # stretches service for the transfer's whole lifetime.
        work_scale = ((segments + lost) / segments) / factor
        self.stats.transfers += 1
        self.stats.segments += segments
        self.stats.lost_segments += lost
        self.stats.bursts += bursts
        self.stats.extra_latency_ms += penalty_ms + jitter_ms
        if factor < 1.0:
            self.stats.dip_transfers += 1
        return TransferImpairment(
            extra_latency_ms=penalty_ms + jitter_ms,
            work_scale=work_scale,
            lost_segments=lost,
            bursts=bursts,
        )
