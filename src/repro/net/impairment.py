"""Seeded, deterministic WiFi-link impairment: bursty loss, jitter, dips.

The clean :class:`~repro.net.link.WifiLink` reproduces the paper's
testbed on a good day; this module models the bad days that dominate real
deployments (OpenUVR names WiFi interference as the primary failure mode
for untethered VR streaming).  Three composable mechanisms:

* **Bursty packet loss** — a Gilbert–Elliott two-state Markov chain
  walked per MTU-sized segment.  Entering the *bad* state drops the
  segment; each loss *burst* costs one TCP-like retransmit timeout whose
  backoff doubles for back-to-back bursts (capped), and every lost
  segment is retransmitted, inflating the bytes actually on the air.
* **Latency jitter** — a log-normal extra delay per transfer
  (``median * exp(sigma * N(0,1))``), the classic heavy-tailed shape of
  wireless MAC service times.
* **Capacity-dip episodes** — scheduled interference windows during which
  the medium serves at a fraction of its nominal capacity (and may carry
  extra loss).  A transfer starting inside a window is slowed for its
  whole life, which is exactly how a TCP flow that enters an interference
  burst behaves.

Determinism: one ``random.Random(seed)`` consumed in transfer-submission
order.  The simulator resumes same-timestamp processes in FIFO order, so
a (schedule, seed) pair replays bit-identically — no wall-clock anywhere.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class DipEpisode:
    """One scheduled interference window on the medium."""

    start_ms: float
    end_ms: float
    capacity_factor: float = 1.0  # fraction of nominal capacity available
    loss_rate: float = 0.0  # extra packet loss while the window is active

    def __post_init__(self) -> None:
        if self.start_ms < 0 or self.end_ms <= self.start_ms:
            raise ValueError("dip window must satisfy 0 <= start < end")
        if not 0.0 < self.capacity_factor <= 1.0:
            raise ValueError("capacity_factor must be in (0, 1]")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")

    def active_at(self, now_ms: float) -> bool:
        """Whether the window covers the instant ``now_ms``."""
        return self.start_ms <= now_ms < self.end_ms


@dataclass(frozen=True)
class ImpairmentConfig:
    """Knobs of the impairment model; the default is the identity.

    ``loss_rate`` is the *long-run* segment loss probability; the
    Gilbert–Elliott transition probabilities are derived from it and
    ``burstiness`` (the probability of staying in the bad state, i.e.
    the mean bad burst is ``1 / (1 - burstiness)`` segments).
    """

    loss_rate: float = 0.0
    burstiness: float = 0.85
    jitter_median_ms: float = 0.0
    jitter_sigma: float = 0.35
    rto_ms: float = 40.0  # base retransmit timeout per loss burst
    rto_backoff_cap: int = 3  # max doublings for back-to-back bursts
    mtu_bytes: int = 1448  # segment size the loss chain is walked over
    seed: int = 0
    dips: Tuple[DipEpisode, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.burstiness < 1.0:
            raise ValueError("burstiness must be in [0, 1)")
        if self.jitter_median_ms < 0 or self.jitter_sigma < 0:
            raise ValueError("jitter parameters must be non-negative")
        if self.rto_ms < 0 or self.rto_backoff_cap < 0:
            raise ValueError("rto parameters must be non-negative")
        if self.mtu_bytes < 1:
            raise ValueError("mtu_bytes must be >= 1")

    @classmethod
    def bursty(cls, loss_rate: float, seed: int = 0,
               dips: Tuple[DipEpisode, ...] = ()) -> "ImpairmentConfig":
        """Impaired-WiFi preset: bursty loss plus mild heavy-tail jitter."""
        return cls(
            loss_rate=loss_rate,
            jitter_median_ms=0.4 if loss_rate > 0 else 0.0,
            seed=seed,
            dips=dips,
        )

    @property
    def is_identity(self) -> bool:
        """True when the config perturbs nothing (clean-link equivalent)."""
        return (
            self.loss_rate == 0.0
            and self.jitter_median_ms == 0.0
            and not self.dips
        )


@dataclass(frozen=True)
class TransferImpairment:
    """What the model decided for one transfer at submission time."""

    extra_latency_ms: float  # retransmit timeouts + jitter, after service
    work_scale: float  # multiplier on the submitted work (>= 1.0)
    lost_segments: int
    bursts: int


@dataclass
class ImpairmentStats:
    """Running totals over a link's lifetime (benchmark reporting)."""

    transfers: int = 0
    segments: int = 0
    lost_segments: int = 0
    bursts: int = 0
    extra_latency_ms: float = 0.0
    dip_transfers: int = 0

    @property
    def observed_loss_rate(self) -> float:
        """Fraction of segments the chain actually dropped."""
        if self.segments == 0:
            return 0.0
        return self.lost_segments / self.segments


class LinkImpairment:
    """Stateful sampler applying an :class:`ImpairmentConfig` to transfers.

    The Gilbert–Elliott chain state persists *across* transfers, so a bad
    burst straddling two frames hits both — that temporal correlation is
    what makes bursty loss qualitatively different from i.i.d. loss.
    """

    def __init__(self, config: ImpairmentConfig) -> None:
        self.config = config
        self.stats = ImpairmentStats()
        self._rng = random.Random(config.seed)
        self._bad = False  # Gilbert-Elliott chain state

    def capacity_factor(self, now_ms: float) -> float:
        """Medium capacity fraction at ``now_ms`` (dip windows stack by min)."""
        factor = 1.0
        for dip in self.config.dips:
            if dip.active_at(now_ms):
                factor = min(factor, dip.capacity_factor)
        return factor

    def _loss_rate_at(self, now_ms: float) -> float:
        loss = self.config.loss_rate
        for dip in self.config.dips:
            if dip.active_at(now_ms):
                loss = max(loss, dip.loss_rate)
        return loss

    def sample(self, now_ms: float, size_bytes: float) -> TransferImpairment:
        """Draw one transfer's impairment (consumes the seeded RNG)."""
        cfg = self.config
        segments = max(1, math.ceil(size_bytes / cfg.mtu_bytes))
        loss = self._loss_rate_at(now_ms)
        lost = 0
        bursts = 0
        penalty_ms = 0.0
        if loss > 0.0:
            # Simplified Gilbert model: every bad-state segment is dropped.
            # Stationary bad probability equals the target loss rate.
            p_bg = 1.0 - cfg.burstiness
            p_gb = min(1.0, loss * p_bg / max(1e-12, 1.0 - loss))
            in_burst = False
            for _ in range(segments):
                if self._bad:
                    lost += 1
                    if not in_burst:
                        # A fresh burst costs one RTO; consecutive bursts
                        # escalate the backoff like TCP's timer doubling.
                        exponent = min(bursts, cfg.rto_backoff_cap)
                        penalty_ms += cfg.rto_ms * (2.0 ** exponent)
                        bursts += 1
                        in_burst = True
                    self._bad = self._rng.random() < cfg.burstiness
                else:
                    in_burst = False
                    self._bad = self._rng.random() < p_gb
        jitter_ms = 0.0
        if cfg.jitter_median_ms > 0.0:
            jitter_ms = cfg.jitter_median_ms * math.exp(
                cfg.jitter_sigma * self._rng.gauss(0.0, 1.0)
            )
        factor = self.capacity_factor(now_ms)
        # Lost segments are retransmitted (more bytes on the air); a dip
        # stretches service for the transfer's whole lifetime.
        work_scale = ((segments + lost) / segments) / factor
        self.stats.transfers += 1
        self.stats.segments += segments
        self.stats.lost_segments += lost
        self.stats.bursts += bursts
        self.stats.extra_latency_ms += penalty_ms + jitter_ms
        if factor < 1.0:
            self.stats.dip_transfers += 1
        return TransferImpairment(
            extra_latency_ms=penalty_ms + jitter_ms,
            work_scale=work_scale,
            lost_segments=lost,
            bursts=bursts,
        )
