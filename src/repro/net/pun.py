"""Photon Unity Networking (PUN) substitute: FI state synchronization.

Multiplayer clients exchange foreground-interaction state — "position,
rotation and animation" of FI objects — through the server each frame
(§3, §5.1 task 4).  The paper measures 2-3 ms per sync round and Kbps-scale
bandwidth that grows with the player count (Table 9: 1 Kbps for one player
up to ~275 Kbps for four).

The model: every send tick each client uploads its FI state blob; the
server aggregates and fans the other players' states back out.  A lone
player only emits a presence heartbeat.  Traffic is recorded on the shared
link for Table 9 accounting; sync latency is the small UDP round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sim import Simulator
from .link import WifiLink


@dataclass(frozen=True)
class PunConfig:
    """PUN-like sync parameters (defaults match PUN's ~20 Hz send rate)."""

    send_rate_hz: float = 20.0
    state_bytes: int = 80  # serialized position + rotation + animation
    heartbeat_bytes: int = 12
    heartbeat_hz: float = 10.0
    base_latency_ms: float = 1.6  # UDP RTT through the server
    server_proc_ms: float = 0.6

    def __post_init__(self) -> None:
        if self.send_rate_hz <= 0 or self.heartbeat_hz <= 0:
            raise ValueError("send rates must be positive")
        if self.state_bytes <= 0 or self.heartbeat_bytes <= 0:
            raise ValueError("message sizes must be positive")
        if self.base_latency_ms < 0 or self.server_proc_ms < 0:
            raise ValueError("latencies must be non-negative")


class PunChannel:
    """FI sync channel shared by the players of one game session."""

    def __init__(
        self,
        sim: Simulator,
        link: WifiLink,
        n_players: int,
        config: PunConfig = PunConfig(),
        seed: int = 0,
    ) -> None:
        if n_players < 1:
            raise ValueError("n_players must be >= 1")
        self.sim = sim
        self.link = link
        self.n_players = n_players
        self.config = config
        self._rng = np.random.default_rng(seed)
        self._last_tick_ms: Optional[float] = None  # None until first send

    # ------------------------------------------------------------------
    # Roster (session supervision: membership changes mid-run)
    # ------------------------------------------------------------------

    def add_player(self) -> None:
        """A player entered the room: FI fanout grows immediately."""
        self.n_players += 1

    def remove_player(self) -> None:
        """A player left the room (graceful leave or eviction)."""
        if self.n_players <= 0:
            raise ValueError("no players left to remove")
        self.n_players -= 1

    # ------------------------------------------------------------------
    # Latency (what the per-frame pipeline sees)
    # ------------------------------------------------------------------

    def sync_latency_ms(self) -> float:
        """One FI sync round: client -> server -> all clients.

        Matches the paper's measured 2-3 ms; small seeded jitter models
        scheduling noise.
        """
        jitter = float(self._rng.uniform(0.0, 0.7))
        return self.config.base_latency_ms + self.config.server_proc_ms + jitter

    # ------------------------------------------------------------------
    # Bandwidth accounting (Table 9's FI column)
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance the sync clock to *now*, recording any due send ticks.

        Called by the session loop once per rendering interval; emits
        traffic at the configured send rate regardless of frame rate.
        The send clock advances in whole period multiples: a tick that
        arrives late (a slow frame) keeps the fractional remainder, so
        the long-run send rate stays at ``send_rate_hz`` instead of
        drifting below it by one frame's jitter per tick.
        """
        if self.n_players < 1:
            return  # empty room: nothing syncs, nothing heartbeats
        period_ms = 1000.0 / (
            self.config.send_rate_hz if self.n_players > 1 else self.config.heartbeat_hz
        )
        if self._last_tick_ms is None:
            self._last_tick_ms = self.sim.now
        else:
            elapsed = self.sim.now - self._last_tick_ms
            if elapsed < period_ms:
                return
            self._last_tick_ms += int(elapsed / period_ms) * period_ms
        if self.n_players == 1:
            self.link.record_datagram(self.config.heartbeat_bytes, tag="fi")
            return
        n = self.n_players
        uploads = n * self.config.state_bytes
        fanout = n * (n - 1) * self.config.state_bytes
        self.link.record_datagram(uploads + fanout, tag="fi")

    def expected_bandwidth_kbps(self, n_players: Optional[int] = None) -> float:
        """Closed-form FI bandwidth (for validation against Table 9).

        ``n_players`` evaluates a hypothetical roster size — admission
        control forecasts the post-join FI load this way — and defaults
        to the live roster.
        """
        n = self.n_players if n_players is None else n_players
        if n <= 0:
            return 0.0
        if n == 1:
            return self.config.heartbeat_bytes * 8 * self.config.heartbeat_hz / 1000.0
        per_tick = n * self.config.state_bytes + n * (n - 1) * self.config.state_bytes
        return per_tick * 8 * self.config.send_rate_hz / 1000.0
