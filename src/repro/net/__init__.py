"""Network substrate: shared 802.11ac link and PUN-like FI sync."""

from .link import MBIT, WifiLink
from .pun import PunChannel, PunConfig

__all__ = ["MBIT", "PunChannel", "PunConfig", "WifiLink"]
