"""Network substrate: shared 802.11ac link, impairment, PUN-like FI sync."""

from .estimator import EstimatorConfig, RateEstimator
from .impairment import (
    TRACE_PROFILES,
    DipEpisode,
    ImpairmentConfig,
    ImpairmentStats,
    LinkImpairment,
    RateTrace,
    TransferImpairment,
)
from .link import MBIT, WifiLink
from .pun import PunChannel, PunConfig

__all__ = [
    "DipEpisode",
    "EstimatorConfig",
    "ImpairmentConfig",
    "ImpairmentStats",
    "LinkImpairment",
    "MBIT",
    "PunChannel",
    "PunConfig",
    "RateEstimator",
    "RateTrace",
    "TRACE_PROFILES",
    "TransferImpairment",
    "WifiLink",
]
