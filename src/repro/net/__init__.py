"""Network substrate: shared 802.11ac link, impairment, PUN-like FI sync."""

from .impairment import (
    DipEpisode,
    ImpairmentConfig,
    ImpairmentStats,
    LinkImpairment,
    TransferImpairment,
)
from .link import MBIT, WifiLink
from .pun import PunChannel, PunConfig

__all__ = [
    "DipEpisode",
    "ImpairmentConfig",
    "ImpairmentStats",
    "LinkImpairment",
    "MBIT",
    "PunChannel",
    "PunConfig",
    "TransferImpairment",
    "WifiLink",
]
