"""Per-client delivery-rate and queueing-delay estimation.

The adaptation layer (``repro.adapt``) needs to know, per client, how
fast the shared medium is actually delivering bytes *right now* and how
much of each transfer's latency is queueing rather than service.  This
module provides that signal: a :class:`RateEstimator` fed with completed
:class:`~repro.net.link.WifiLink` transfers (the system loops call
:meth:`RateEstimator.observe` with the size and measured duration of
every finished fetch).

Two mechanisms, both standard in delay-based congestion control:

* **EWMA delivery rate** — each completed transfer yields one
  instantaneous rate sample (``bits / duration``); an exponentially
  weighted moving average smooths the processor-sharing medium's
  per-transfer contention noise while still tracking sustained rate
  changes within a few transfers.
* **Windowed min unit-delay** — the per-megabit service time of each
  transfer enters a sliding time window; the window *minimum* is the
  uncongested baseline (BBR's min-RTT idea applied to unit service
  time), and the excess of the smoothed unit delay over that baseline is
  the queueing-delay estimate.

Determinism: the estimator is pure arithmetic over the observation
stream — no wall clock, no RNG.  Identical observation sequences produce
bit-identical estimate streams (property-tested), which is what lets a
(trace, seed, config) replay reproduce the controller's every decision.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

MBIT = 1_000_000.0


@dataclass(frozen=True)
class EstimatorConfig:
    """Knobs of the per-client rate/delay estimator."""

    ewma_alpha: float = 0.3  # weight of the newest rate sample
    min_window_ms: float = 3000.0  # sliding window for the min unit-delay
    warmup_samples: int = 2  # observations before estimates are served

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.min_window_ms <= 0:
            raise ValueError("min_window_ms must be positive")
        if self.warmup_samples < 1:
            raise ValueError("warmup_samples must be >= 1")


class RateEstimator:
    """EWMA delivery rate plus windowed-min queueing delay for one client."""

    def __init__(self, config: Optional[EstimatorConfig] = None) -> None:
        self.config = config or EstimatorConfig()
        self.samples = 0
        self._rate_mbps: Optional[float] = None
        self._unit_ms: Optional[float] = None  # smoothed ms per megabit
        # (observed_at_ms, unit_ms) pairs inside the sliding window.
        self._window: Deque[Tuple[float, float]] = deque()
        self._last_observed_ms: Optional[float] = None

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def observe(
        self, now_ms: float, size_bytes: float, duration_ms: float
    ) -> None:
        """Record one completed transfer (called at its completion time).

        ``duration_ms`` is the transfer's total latency as the client saw
        it — queueing under contention, retransmit penalties, and jitter
        included — which is exactly the quantity deadline decisions are
        made against.
        """
        if size_bytes <= 0 or duration_ms <= 0:
            return  # zero-byte transfers carry no rate information
        if self._last_observed_ms is not None and now_ms < self._last_observed_ms:
            raise ValueError("observations must arrive in time order")
        self._last_observed_ms = now_ms
        megabits = size_bytes * 8.0 / MBIT
        rate_mbps = megabits / duration_ms * 1000.0
        unit_ms = duration_ms / megabits
        alpha = self.config.ewma_alpha
        if self._rate_mbps is None:
            self._rate_mbps = rate_mbps
            self._unit_ms = unit_ms
        else:
            self._rate_mbps += alpha * (rate_mbps - self._rate_mbps)
            self._unit_ms += alpha * (unit_ms - self._unit_ms)
        self._window.append((now_ms, unit_ms))
        horizon = now_ms - self.config.min_window_ms
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()
        self.samples += 1

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------

    @property
    def warmed_up(self) -> bool:
        """Whether enough observations arrived to serve estimates."""
        return self.samples >= self.config.warmup_samples

    def rate_mbps(self) -> Optional[float]:
        """Smoothed delivery rate, or None before warm-up."""
        if not self.warmed_up:
            return None
        return self._rate_mbps

    def min_unit_ms(self) -> Optional[float]:
        """Windowed minimum service time per megabit (the clean baseline)."""
        if not self._window:
            return None
        return min(unit for _, unit in self._window)

    def queueing_delay_ms(self, size_bytes: float) -> Optional[float]:
        """Estimated queueing excess for a transfer of ``size_bytes``.

        The smoothed unit delay minus the windowed-min baseline, scaled to
        the transfer size: zero on an uncontended link, growing as the
        medium saturates.
        """
        if not self.warmed_up:
            return None
        baseline = self.min_unit_ms()
        if baseline is None:
            return None
        megabits = size_bytes * 8.0 / MBIT
        return max(0.0, (self._unit_ms - baseline) * megabits)

    def predict_transfer_ms(self, size_bytes: float) -> Optional[float]:
        """Expected latency of a ``size_bytes`` transfer issued now.

        Smoothed unit delay times the transfer size — queueing excess is
        already folded into the smoothed unit delay, so this is the
        straightforward "at the rate and contention I have been seeing"
        forecast the drop/ladder policies act on.  None before warm-up.
        """
        if not self.warmed_up or size_bytes <= 0:
            return None
        megabits = size_bytes * 8.0 / MBIT
        return self._unit_ms * megabits
