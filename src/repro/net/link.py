"""The shared 802.11ac wireless link.

The testbed (§3) measures ~500 Mbps TCP download from the server over
802.11ac, shared by all phones.  We model the medium as a processor-sharing
fluid link (:class:`repro.sim.FluidShareServer`): N concurrent transfers
each progress at capacity/N, plus a fixed per-transfer MAC/RTT overhead.
This is precisely the mechanism behind the paper's scaling wall — per-frame
network delay grows near-linearly with the number of players (Table 1).

The link also keeps per-tag byte accounting so the benchmarks can report
Table 9's bandwidth split (BE frames vs FI sync traffic).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from ..sim import Event, FluidShareServer, Simulator
from .impairment import LinkImpairment

MBIT = 1_000_000.0


class WifiLink:
    """A shared-capacity wireless medium with byte accounting."""

    # Fractional goodput lost per extra contending station: 802.11 MAC
    # arbitration (backoff collisions, ACK/IFS overhead) erodes aggregate
    # throughput as stations multiply.
    MAC_CONTENTION_LOSS = 0.095

    def __init__(
        self,
        sim: Simulator,
        capacity_mbps: float = 500.0,
        overhead_ms: float = 1.5,
        stations: int = 1,
        impairment: Optional[LinkImpairment] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        if capacity_mbps <= 0:
            raise ValueError("capacity_mbps must be positive")
        if stations < 1:
            raise ValueError("stations must be >= 1")
        self.sim = sim
        # Telemetry hook (repro.telemetry.SpanTracer or None): submission
        # instants carry the impairment draw, the impaired relay stamps a
        # completed link.transfer span, aborts are marked.  Purely
        # observational — no events are scheduled for tracing.
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self._trace_lane_ends: list = []  # per-lane last span end (tracing)
        # Metrics hook (repro.telemetry.MetricsHub or None): per-tag byte
        # counters mirror _tag_bytes, and a probe samples active transfers
        # plus medium utilization at each boundary.  Also observational.
        self.metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )
        self._byte_counters: Dict[str, object] = {}
        if self.metrics is not None:
            active_gauge = self.metrics.gauge("link_active_transfers")
            util_gauge = self.metrics.gauge("link_utilization")

            def _probe() -> None:
                active_gauge.set(float(self._medium.active_flows))
                if self.sim.now > 0:
                    util_gauge.set(self._medium.utilization(self.sim.now))

            self.metrics.register_probe(_probe)
        self.capacity_mbps = capacity_mbps
        self.stations = stations
        self.mac_efficiency = 1.0 / (1.0 + self.MAC_CONTENTION_LOSS * (stations - 1))
        # FluidShareServer works in megabits per millisecond.
        self._medium = FluidShareServer(
            sim,
            capacity=capacity_mbps * self.mac_efficiency / 1000.0,
            overhead_ms=overhead_ms,
        )
        # Optional seeded impairment (loss/jitter/dips); None = clean link
        # with the exact historical behaviour.
        self.impairment = impairment
        self._relayed: Dict[Event, Event] = {}  # impaired outer -> medium event
        self._tag_bytes: Dict[str, float] = defaultdict(float)
        self._first_activity_ms = None

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------

    def transfer(self, size_bytes: float, tag: str = "be") -> Event:
        """Send ``size_bytes`` over the medium; completion event's value is
        the transfer duration in ms (including queueing under contention).

        Zero-byte transfers complete immediately without paying the MAC
        overhead — nothing is put on the air.
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if not tag:
            raise ValueError("tag must be a non-empty string")
        if size_bytes == 0:
            done = self.sim.event()
            done.succeed(0.0)
            return done
        self._note_activity()
        self._tag_bytes[tag] += size_bytes
        if self.metrics is not None:
            self._meter_bytes(tag, size_bytes)
        megabits = size_bytes * 8.0 / MBIT
        tracer = self.tracer
        if self.impairment is None:
            if tracer is not None:
                tracer.instant(
                    "link.submit", -1, "link", self.sim.now, cat="net",
                    args={"bytes": size_bytes, "tag": tag,
                          "active": self._medium.active_flows},
                )
            return self._medium.submit(megabits)
        drawn = self.impairment.sample(self.sim.now, size_bytes)
        inner = self._medium.submit(megabits * drawn.work_scale)
        outer = self.sim.event()
        self._relayed[outer] = inner
        submitted_ms = self.sim.now
        if tracer is not None:
            tracer.instant(
                "link.submit", -1, "link", submitted_ms, cat="net",
                args={"bytes": size_bytes, "tag": tag,
                      "active": self._medium.active_flows,
                      "work_scale": round(drawn.work_scale, 4),
                      "lost_segments": drawn.lost_segments,
                      "bursts": drawn.bursts},
            )

        def relay():
            service_ms = yield inner
            if drawn.extra_latency_ms > 0:
                yield drawn.extra_latency_ms
            self._relayed.pop(outer, None)
            total_ms = service_ms + drawn.extra_latency_ms
            if tracer is not None:
                tracer.complete(
                    "link.transfer", -1, self._trace_lane(submitted_ms, total_ms),
                    submitted_ms, total_ms, cat="net",
                    args={"bytes": size_bytes, "tag": tag,
                          "lost_segments": drawn.lost_segments,
                          "bursts": drawn.bursts,
                          "extra_latency_ms": round(drawn.extra_latency_ms, 4)},
                )
            outer.succeed(total_ms)

        self.sim.spawn(relay())
        return outer

    def _trace_lane(self, start_ms: float, dur_ms: float) -> str:
        """A link sub-lane free over [start, start+dur] (tracing only).

        Concurrent transfers would overlap on one timeline track, which
        trace viewers render badly; greedy interval coloring spreads them
        over ``link 0``, ``link 1``, ... so each lane's spans are disjoint.
        """
        for i, end_ms in enumerate(self._trace_lane_ends):
            if end_ms <= start_ms:
                self._trace_lane_ends[i] = start_ms + dur_ms
                return f"link {i}"
        self._trace_lane_ends.append(start_ms + dur_ms)
        return f"link {len(self._trace_lane_ends) - 1}"

    def abort(self, event: Event) -> bool:
        """Abandon a pending transfer (retry/backoff path).

        The medium stops serving it and ``event`` never fires; the bytes
        already counted stay counted (they were attempted on the air).
        Returns False if the transfer had already completed.
        """
        inner = self._relayed.pop(event, event)
        cancelled = self._medium.cancel(inner)
        if cancelled and self.tracer is not None:
            self.tracer.instant(
                "link.abort", -1, "link", self.sim.now, cat="net"
            )
        return cancelled

    def record_datagram(self, size_bytes: float, tag: str = "fi") -> None:
        """Account small UDP traffic without simulating its service time.

        FI sync messages are 3-4 orders of magnitude below BE traffic
        (Table 9); their contribution to medium occupancy is negligible but
        their bandwidth is reported, so they are counted, not queued.
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if not tag:
            raise ValueError("tag must be a non-empty string")
        self._note_activity()
        self._tag_bytes[tag] += size_bytes
        if self.metrics is not None:
            self._meter_bytes(tag, size_bytes)

    def _note_activity(self) -> None:
        if self._first_activity_ms is None:
            self._first_activity_ms = self.sim.now

    def _meter_bytes(self, tag: str, size_bytes: float) -> None:
        """Mirror per-tag byte totals into the metrics hub (cached handles)."""
        counter = self._byte_counters.get(tag)
        if counter is None:
            counter = self.metrics.counter("link_bytes_total", {"tag": tag})
            self._byte_counters[tag] = counter
        counter.inc(size_bytes)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def active_transfers(self) -> int:
        return self._medium.active_flows

    def bytes_for(self, tag: str) -> float:
        """Total bytes recorded under a traffic tag."""
        return self._tag_bytes.get(tag, 0.0)

    def total_bytes(self) -> float:
        """Total bytes across all tags."""
        return sum(self._tag_bytes.values())

    def bandwidth_mbps(self, tag: str, horizon_ms: float) -> float:
        """Average bandwidth consumed by ``tag`` traffic over a horizon."""
        if horizon_ms <= 0:
            raise ValueError(
                f"horizon_ms must be positive, got {horizon_ms}"
            )
        return self.bytes_for(tag) * 8.0 / MBIT / (horizon_ms / 1000.0)

    def utilization(self, horizon_ms: float) -> float:
        """Fraction of the horizon the medium was busy."""
        if horizon_ms <= 0:
            raise ValueError(
                f"horizon_ms must be positive, got {horizon_ms}"
            )
        return self._medium.utilization(horizon_ms)
