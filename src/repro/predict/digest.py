"""Deterministic 64-bit digests for speculation and sync validation.

Every digest in the speculation/sync subsystem is an FNV-1a hash over
little-endian byte encodings of exact values — 64-bit two's-complement
integers and IEEE-754 float64 bit patterns.  No rounding, no string
formatting: two runs that computed the same floats produce the same
digest bit-for-bit, and a single flipped mantissa bit changes it.  This
is the float64 oracle the rollback path asserts against and the state
hash the :class:`~repro.session.sync.SyncValidator` exchanges between
peers.
"""

from __future__ import annotations

import struct
from typing import Iterable

from ..geometry import GridPoint

#: FNV-1a 64-bit offset basis / prime (public-domain constants).
FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a(data: bytes, seed: int = FNV_OFFSET) -> int:
    """Fold ``data`` into a running FNV-1a 64-bit hash."""
    h = seed & _MASK64
    for byte in data:
        h ^= byte
        h = (h * FNV_PRIME) & _MASK64
    return h


def int_bits(*values: int) -> bytes:
    """Little-endian 64-bit two's-complement encoding of integers."""
    return struct.pack(f"<{len(values)}q", *values)


def float_bits(*values: float) -> bytes:
    """Little-endian IEEE-754 float64 bit patterns (exact, no rounding)."""
    return struct.pack(f"<{len(values)}d", *values)


def digest_ints(values: Iterable[int], seed: int = FNV_OFFSET) -> int:
    """Hash a sequence of integers (each folded as 64 unsigned bits)."""
    h = seed & _MASK64
    for value in values:
        h = fnv1a(struct.pack("<Q", value & _MASK64), h)
    return h


def stored_frame_digest(stored, grid_point: GridPoint) -> int:
    """The float64 oracle digest of one far-BE frame.

    Covers the grid point, the exact wire size, and the float64 bit
    patterns of the stored viewpoint — everything that determines what
    the emulated pipeline displays for that frame.  Recomputing it from
    the authoritative :class:`~repro.core.preprocess.PanoramaStore` and
    comparing against the digest stamped on a speculative cache entry is
    how the rollback path proves speculative and corrected state
    converge bit-identically.
    """
    h = fnv1a(int_bits(grid_point[0], grid_point[1]))
    h = fnv1a(int_bits(int(stored.wire_bytes)), h)
    h = fnv1a(float_bits(stored.viewpoint.x, stored.viewpoint.y), h)
    return h


def pose_digest(
    t_ms: float, x: float, y: float, heading: float, seed: int = FNV_OFFSET
) -> int:
    """Hash one viewport pose (float64 bit patterns, order-sensitive)."""
    return fnv1a(float_bits(t_ms, x, y, heading), seed)
