"""Viewport-pose prediction for speculative far-BE prefetch.

HMD pose exhibits strong frame-to-frame correlation (the "VR Viewport
Pose Model" measurements), so a few-frames-out forecast is usually a
meter-accurate guess about where the player's next grid point will be.
The predictor here is deliberately simple and fully deterministic:

* **cv** — constant-velocity dead reckoning: the latest finite-difference
  velocity (and angular velocity) is extrapolated ``horizon_frames``
  ahead;
* **ewma** — the same extrapolation over EWMA-damped linear velocity and
  an EWMA-damped angular model, which filters single-frame jitter at the
  cost of lagging sharp turns.

Every forecast carries a *calibrated confidence radius*: an EWMA of the
realized prediction error times a safety margin.  The frame loop only
speculates while the radius stays below a bound, so a predictor whose
errors blow up (teleports, snap-turns, stale-speculation storms)
throttles itself until its error estimate re-converges.  A forecast
whose realized error exceeds the radius it shipped with is counted as a
misprediction.

Pure float arithmetic, no RNG: two runs over the same trajectory produce
bit-identical forecasts, which the sync validator relies on.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from ..geometry import Vec2
from ..trace.movement import FRAME_MS

_MODELS = ("cv", "ewma")


def wrap_angle(radians: float) -> float:
    """Map an angle difference into ``[-pi, pi)`` (shortest turn)."""
    return (radians + math.pi) % (2.0 * math.pi) - math.pi


@dataclass(frozen=True)
class PredictConfig:
    """Knobs for the pose predictor and the speculation it drives.

    ``horizon_frames`` is how many rendering intervals ahead to forecast;
    ``model`` picks ``cv`` or ``ewma``; ``ewma_alpha`` damps the velocity
    estimate (ewma model only); ``error_alpha`` calibrates the confidence
    radius from realized errors; ``confidence_margin`` scales the error
    EWMA into the shipped radius; ``confidence_init_m`` seeds the radius
    before any error has been observed; ``max_confidence_m`` gates
    speculation — forecasts with a wider radius are not acted on;
    ``speculative_ttl_ms`` bounds how long an unconfirmed speculative
    cache entry may linger before it expires as a misprediction.
    """

    horizon_frames: int = 6
    model: str = "cv"
    ewma_alpha: float = 0.3
    error_alpha: float = 0.2
    confidence_margin: float = 2.0
    confidence_init_m: float = 0.5
    max_confidence_m: float = 4.0
    speculative_ttl_ms: float = 1000.0

    def __post_init__(self) -> None:
        if self.horizon_frames < 1:
            raise ValueError("horizon_frames must be >= 1")
        if self.model not in _MODELS:
            raise ValueError(f"unknown model {self.model!r}; use 'cv' or 'ewma'")
        for name in ("ewma_alpha", "error_alpha"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        if self.confidence_margin <= 0:
            raise ValueError("confidence_margin must be positive")
        if self.confidence_init_m < 0:
            raise ValueError("confidence_init_m must be non-negative")
        if self.max_confidence_m <= 0:
            raise ValueError("max_confidence_m must be positive")
        if self.speculative_ttl_ms <= 0:
            raise ValueError("speculative_ttl_ms must be positive")


@dataclass(frozen=True)
class PosePrediction:
    """One forecast: where the viewport will be at ``t_ms``."""

    t_ms: float
    position: Vec2
    heading: float
    confidence_m: float

    @property
    def confident(self) -> bool:
        """Whether the radius is finite (some error history exists)."""
        return math.isfinite(self.confidence_m)


class PosePredictor:
    """Per-player pose forecaster with calibrated confidence.

    Feed every displayed pose through :meth:`observe`; ask for a
    forecast with :meth:`predict`.  Outstanding forecasts are scored
    against reality as their target times arrive, updating the error
    EWMA (and hence the confidence radius) and the misprediction count.
    """

    def __init__(self, config: PredictConfig) -> None:
        self.config = config
        self._last: Optional[Tuple[float, Vec2, float]] = None
        self._velocity = Vec2(0.0, 0.0)  # meters per ms
        self._angular = 0.0  # radians per ms
        self._have_velocity = False
        self._err_ewma = config.confidence_init_m
        #: (target_t_ms, predicted position, shipped radius) awaiting truth.
        self._outstanding: Deque[Tuple[float, Vec2, float]] = deque()
        self.predictions = 0
        self.mispredictions = 0

    @property
    def confidence_m(self) -> float:
        """The radius the next forecast would ship with."""
        return self.config.confidence_margin * self._err_ewma

    def observe(self, t_ms: float, position: Vec2, heading: float) -> None:
        """Ingest the pose displayed at ``t_ms`` and score due forecasts."""
        while self._outstanding and self._outstanding[0][0] <= t_ms:
            _, predicted, radius = self._outstanding.popleft()
            error = predicted.distance_to(position)
            if error > radius:
                self.mispredictions += 1
            alpha = self.config.error_alpha
            self._err_ewma = (1.0 - alpha) * self._err_ewma + alpha * error
        if self._last is not None:
            last_t, last_pos, last_heading = self._last
            dt = t_ms - last_t
            if dt > 0.0:
                velocity = (position - last_pos) / dt
                angular = wrap_angle(heading - last_heading) / dt
                if self.config.model == "cv" or not self._have_velocity:
                    self._velocity = velocity
                    self._angular = angular
                else:
                    alpha = self.config.ewma_alpha
                    self._velocity = (
                        self._velocity * (1.0 - alpha) + velocity * alpha
                    )
                    self._angular = (
                        (1.0 - alpha) * self._angular + alpha * angular
                    )
                self._have_velocity = True
        self._last = (t_ms, position, heading)

    def predict(self, now_ms: float) -> Optional[PosePrediction]:
        """Forecast the pose ``horizon_frames`` intervals past ``now_ms``.

        Returns None until two observations have established a velocity.
        The forecast is recorded as outstanding so a later
        :meth:`observe` at (or past) its target time scores it.
        """
        if self._last is None or not self._have_velocity:
            return None
        horizon_ms = self.config.horizon_frames * FRAME_MS
        last_t, last_pos, last_heading = self._last
        ahead_ms = (now_ms - last_t) + horizon_ms
        position = last_pos + self._velocity * ahead_ms
        heading = last_heading + self._angular * ahead_ms
        radius = self.confidence_m
        self.predictions += 1
        self._outstanding.append((now_ms + horizon_ms, position, radius))
        return PosePrediction(
            t_ms=now_ms + horizon_ms,
            position=position,
            heading=heading,
            confidence_m=radius,
        )

    @property
    def misprediction_rate(self) -> float:
        """Fraction of scored forecasts whose error exceeded their radius."""
        scored = self.predictions - len(self._outstanding)
        if scored <= 0:
            return 0.0
        return self.mispredictions / scored
