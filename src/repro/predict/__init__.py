"""Speculative pose prediction (viewport forecasting + digests).

The package that lets Coterie prefetch *ahead of* the prefetcher's own
lookahead: a deterministic viewport-pose predictor
(:class:`PosePredictor`) forecasts where a player will be a few frames
out, the frame loop speculatively fetches the forecast grid point's
far-BE panorama, and the digest helpers give every frame a float64
oracle hash so speculative state can be validated — and rolled back —
bit-exactly.  ``predict=None`` sessions never import any of this on the
hot path and stay bit-identical to the non-speculative pipeline.
"""

from .digest import (
    FNV_OFFSET,
    digest_ints,
    float_bits,
    fnv1a,
    int_bits,
    pose_digest,
    stored_frame_digest,
)
from .pose import PosePrediction, PosePredictor, PredictConfig, wrap_angle

__all__ = [
    "FNV_OFFSET",
    "PosePrediction",
    "PosePredictor",
    "PredictConfig",
    "digest_ints",
    "float_bits",
    "fnv1a",
    "int_bits",
    "pose_digest",
    "stored_frame_digest",
    "wrap_angle",
]
