"""8x8 type-II DCT over block tensors.

Implemented as two matrix multiplications with the orthonormal DCT-II
basis, vectorized across all blocks with einsum: for a block ``B``,
``coeffs = C @ B @ C.T`` and ``B = C.T @ coeffs @ C``.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from .blocks import BLOCK


@lru_cache(maxsize=1)
def dct_matrix() -> np.ndarray:
    """The orthonormal 8x8 DCT-II basis matrix."""
    c = np.zeros((BLOCK, BLOCK))
    for k in range(BLOCK):
        scale = math.sqrt(1.0 / BLOCK) if k == 0 else math.sqrt(2.0 / BLOCK)
        for n in range(BLOCK):
            c[k, n] = scale * math.cos(math.pi * (2 * n + 1) * k / (2 * BLOCK))
    return c


def forward_dct(blocks: np.ndarray) -> np.ndarray:
    """DCT-II of every 8x8 block in an (ny, nx, 8, 8) tensor."""
    if blocks.shape[-2:] != (BLOCK, BLOCK):
        raise ValueError("blocks must be (..., 8, 8)")
    c = dct_matrix()
    return np.einsum("ij,...jk,lk->...il", c, blocks.astype(np.float64), c)


def inverse_dct(
    coeffs: np.ndarray, out: "np.ndarray | None" = None
) -> np.ndarray:
    """Inverse DCT of every 8x8 coefficient block.

    Accepts any leading batch dimensions — the einsum contracts each
    block independently, so stacked decodes are bit-identical to
    per-frame ones.  ``out`` takes a preallocated float64 result buffer
    (arena use).
    """
    if coeffs.shape[-2:] != (BLOCK, BLOCK):
        raise ValueError("coeffs must be (..., 8, 8)")
    c = dct_matrix()
    promoted = np.asarray(coeffs, dtype=np.float64)
    if out is None:
        return np.einsum("ji,...jk,kl->...il", c, promoted, c)
    return np.einsum("ji,...jk,kl->...il", c, promoted, c, out=out)
