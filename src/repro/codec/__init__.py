"""H.264-like frame codec: DCT transform coding with real byte output."""

from .blocks import BLOCK, join_blocks, pad_to_blocks, split_blocks
from .dct import dct_matrix, forward_dct, inverse_dct
from .dirty import (
    DirtyBlockCodec,
    block_digests,
    dirty_row_mask,
    frame_block_digests,
)
from .entropy import decode_levels, encode_levels, zigzag_order
from .h264like import FOUR_K_PIXELS, CodecTiming, EncodedFrame, FrameCodec
from .quant import (
    BASE_QUANT,
    DEFAULT_CRF,
    dequantize,
    quant_matrix,
    quant_scale,
    quantize,
)

__all__ = [
    "BASE_QUANT",
    "BLOCK",
    "CodecTiming",
    "DEFAULT_CRF",
    "DirtyBlockCodec",
    "EncodedFrame",
    "FOUR_K_PIXELS",
    "FrameCodec",
    "block_digests",
    "dct_matrix",
    "decode_levels",
    "dequantize",
    "dirty_row_mask",
    "frame_block_digests",
    "encode_levels",
    "forward_dct",
    "inverse_dct",
    "join_blocks",
    "pad_to_blocks",
    "quant_matrix",
    "quant_scale",
    "quantize",
    "split_blocks",
    "zigzag_order",
]
