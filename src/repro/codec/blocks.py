"""Block decomposition for the DCT codec.

The codec operates on 8x8 luminance blocks like H.264's baseline intra
path.  Frames whose dimensions are not multiples of 8 are edge-padded
before splitting and cropped after joining.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

BLOCK = 8


def pad_to_blocks(frame: np.ndarray) -> np.ndarray:
    """Edge-pad a 2D frame so both dimensions are multiples of 8."""
    if frame.ndim != 2:
        raise ValueError("expected a 2D luminance frame")
    h, w = frame.shape
    pad_h = (-h) % BLOCK
    pad_w = (-w) % BLOCK
    if pad_h == 0 and pad_w == 0:
        return frame
    return np.pad(frame, ((0, pad_h), (0, pad_w)), mode="edge")


def split_blocks(frame: np.ndarray) -> np.ndarray:
    """(H, W) frame -> (n_blocks_y, n_blocks_x, 8, 8) block tensor."""
    if frame.ndim != 2:
        raise ValueError("expected a 2D luminance frame")
    h, w = frame.shape
    if h % BLOCK or w % BLOCK:
        raise ValueError(f"frame {h}x{w} not block-aligned; pad first")
    return (
        frame.reshape(h // BLOCK, BLOCK, w // BLOCK, BLOCK)
        .transpose(0, 2, 1, 3)
        .copy()
    )


def split_blocks_stack(frames: np.ndarray) -> np.ndarray:
    """(N, H, W) frame stack -> (N, ny, nx, 8, 8) block tensor.

    Per-frame results are bit-identical to :func:`split_blocks` (pure
    index reshuffling).
    """
    if frames.ndim != 3:
        raise ValueError("expected an (N, H, W) frame stack")
    n, h, w = frames.shape
    if h % BLOCK or w % BLOCK:
        raise ValueError(f"frames {h}x{w} not block-aligned; pad first")
    return (
        frames.reshape(n, h // BLOCK, BLOCK, w // BLOCK, BLOCK)
        .transpose(0, 1, 3, 2, 4)
        .copy()
    )


def join_blocks_stack(
    blocks: np.ndarray, shape: Tuple[int, int], out: "np.ndarray | None" = None
) -> np.ndarray:
    """Inverse of :func:`split_blocks_stack`, cropping each frame to ``shape``.

    ``out`` takes a preallocated ``(N, ny*8, nx*8)`` buffer (arena use);
    the returned array is then a cropped view into it.  Per-frame results
    are bit-identical to :func:`join_blocks`.
    """
    if blocks.ndim != 5 or blocks.shape[3:] != (BLOCK, BLOCK):
        raise ValueError("expected an (N, ny, nx, 8, 8) block tensor")
    n, ny, nx = blocks.shape[:3]
    h, w = shape
    if h > ny * BLOCK or w > nx * BLOCK:
        raise ValueError(
            f"target shape {shape} exceeds joined frame "
            f"{(ny * BLOCK, nx * BLOCK)}"
        )
    if out is None:
        out = np.empty((n, ny * BLOCK, nx * BLOCK), dtype=blocks.dtype)
    elif out.shape != (n, ny * BLOCK, nx * BLOCK):
        raise ValueError("out buffer shape mismatch")
    # Writing through the block-shaped strided view of ``out`` joins the
    # blocks without the intermediate copy a transpose+reshape would make.
    np.copyto(
        out.reshape(n, ny, BLOCK, nx, BLOCK).transpose(0, 1, 3, 2, 4), blocks
    )
    return out[:, :h, :w]


def join_blocks(blocks: np.ndarray, shape: Tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`split_blocks`, cropping to ``shape``."""
    if blocks.ndim != 4 or blocks.shape[2:] != (BLOCK, BLOCK):
        raise ValueError("expected an (ny, nx, 8, 8) block tensor")
    ny, nx = blocks.shape[:2]
    frame = blocks.transpose(0, 2, 1, 3).reshape(ny * BLOCK, nx * BLOCK)
    h, w = shape
    if h > frame.shape[0] or w > frame.shape[1]:
        raise ValueError(f"target shape {shape} exceeds joined frame {frame.shape}")
    return frame[:h, :w].copy()
