"""Dirty-block encode reuse: splice cached coefficients for unchanged blocks.

Nearby panorama poses share most of their pixels — the sky half of a far-BE
frame is literally identical between probe points, and ground texture far
from the eye barely moves.  The from-scratch encoder still pays full
DCT/quantization for every 8x8 block of every frame.  This module adds the
block-level reuse that "You Only Render Once"-style pipelines exploit: the
``(ny, nx)`` block tensor of each frame is content-hashed, and only blocks
whose hash changed versus a *keyed reference frame* are re-transformed; the
quantized coefficients of unchanged blocks are spliced from the reference.
The entropy coder (zlib over the zigzagged level tensor) always runs over
the full spliced tensor — its byte stream is not block-addressable — so the
output bytes are **bit-identical** to a from-scratch encode.

Reuse effectiveness is observable through :mod:`repro.perf` counters
(``codec.blocks_total`` / ``codec.blocks_reused`` /
``codec.blocks_recomputed``, plus ``codec.ref_hits`` /
``codec.ref_misses`` for reference-frame lookups), and the per-frame dirty
map is exported so the SSIM layer can skip recomputing moments for clean
rows (:func:`repro.similarity.ssim.ssim_map_update`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

import numpy as np

from .. import perf
from .blocks import BLOCK, pad_to_blocks, split_blocks
from .dct import forward_dct
from .entropy import encode_levels
from .h264like import EncodedFrame, FrameCodec
from .quant import quantize

_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x100000001B3)


def block_digests(blocks: np.ndarray) -> np.ndarray:
    """64-bit content hash of every 8x8 block in a ``(ny, nx, 8, 8)`` tensor.

    FNV-1a over the raw float64 bit patterns of each block, vectorized
    across the block grid (the 64 lanes of a block fold in a short fixed
    loop).  Equal pixel content always hashes equal; any single-bit pixel
    change changes the digest (collisions across *different* contents are
    possible in principle but need ~2^32 distinct blocks per reference to
    become likely — far beyond any panorama store).
    """
    if blocks.ndim != 4 or blocks.shape[2:] != (BLOCK, BLOCK):
        raise ValueError(f"expected (ny, nx, {BLOCK}, {BLOCK}) blocks")
    ny, nx = blocks.shape[:2]
    lanes = np.ascontiguousarray(blocks, dtype=np.float64).reshape(ny, nx, -1)
    bits = lanes.view(np.uint64)
    h = np.full((ny, nx), _FNV_OFFSET, dtype=np.uint64)
    for lane in range(bits.shape[-1]):
        h = (h ^ bits[..., lane]) * _FNV_PRIME
    return h


def frame_block_digests(frame: np.ndarray) -> np.ndarray:
    """Digest grid of a [0, 1] luminance frame, padded like the encoder.

    Applies the encoder's exact pixel transform (``*255 - 128``, edge
    padding to block multiples) before hashing, so a frame's digest grid
    matches what :class:`DirtyBlockCodec` would compute for it.
    """
    pixels = np.asarray(frame, dtype=np.float64) * 255.0
    return block_digests(split_blocks(pad_to_blocks(pixels - 128.0)))


def dirty_row_mask(dirty: np.ndarray, height: int) -> np.ndarray:
    """Expand a ``(ny, nx)`` dirty-block map to a per-pixel-row bool mask.

    A pixel row is dirty when any block overlapping it is dirty; the SSIM
    reuse path uses this to decide which Gaussian-moment rows to refresh.
    """
    return np.repeat(np.asarray(dirty, dtype=bool).any(axis=1), BLOCK)[:height]


@dataclass
class _Reference:
    """Cached per-key state: block digests plus quantized coefficients."""

    digests: np.ndarray  # (ny, nx) uint64
    levels: np.ndarray  # (ny, nx, BLOCK, BLOCK) quantized coefficients


class DirtyBlockCodec:
    """I-frame encoder that reuses DCT/quant work for unchanged blocks.

    Wraps a :class:`FrameCodec` and keeps, per caller-supplied reference
    key, the block digests and quantized coefficient tensor of the last
    frame encoded under that key.  On the next frame with the same key,
    only blocks whose content hash changed are re-transformed; cached
    coefficients are spliced in for the rest, and the entropy coder runs
    over the full spliced tensor.  Output bytes are bit-identical to
    ``FrameCodec.encode(frame)`` — the test suite pins this across all
    nine games.

    References are held in a small LRU (``max_references``) so a store
    cycling through many cutoff radii cannot grow without bound.
    """

    def __init__(self, codec: FrameCodec, max_references: int = 8) -> None:
        if max_references < 1:
            raise ValueError("max_references must be positive")
        self.codec = codec
        self.max_references = max_references
        self._refs: "OrderedDict[Hashable, _Reference]" = OrderedDict()
        self.last_dirty: Optional[np.ndarray] = None

    @property
    def crf(self) -> float:
        """Quality setting of the wrapped codec."""
        return self.codec.crf

    def encode(self, frame: np.ndarray, key: Hashable = None) -> EncodedFrame:
        """Encode an I-frame, reusing coefficients cached under ``key``.

        With ``key=None`` the call falls through to the wrapped codec
        unchanged (no reuse, no reference update, ``last_dirty`` cleared).
        """
        if key is None:
            self.last_dirty = None
            return self.codec.encode(frame)
        if frame.ndim != 2:
            raise ValueError("expected a 2D luminance frame")
        if frame.size == 0:
            raise ValueError("empty frame")
        with perf.timed("encode"):
            pixels = np.asarray(frame, dtype=np.float64) * 255.0
            blocks = split_blocks(pad_to_blocks(pixels - 128.0))
            digests = block_digests(blocks)
            ref = self._refs.get(key)
            if ref is None or ref.digests.shape != digests.shape:
                perf.count("codec.ref_misses")
                levels = quantize(forward_dct(blocks), self.codec.crf)
                dirty = np.ones(digests.shape, dtype=bool)
            else:
                perf.count("codec.ref_hits")
                dirty = ref.digests != digests
                levels = ref.levels.copy()
                if dirty.any():
                    flat = np.nonzero(dirty.reshape(-1))[0]
                    sel = blocks.reshape(-1, BLOCK, BLOCK)[flat]
                    levels.reshape(-1, BLOCK, BLOCK)[flat] = quantize(
                        forward_dct(sel), self.codec.crf
                    )
            n_dirty = int(dirty.sum())
            perf.count("codec.blocks_total", int(dirty.size))
            perf.count("codec.blocks_recomputed", n_dirty)
            perf.count("codec.blocks_reused", int(dirty.size) - n_dirty)
            self._remember(key, _Reference(digests=digests, levels=levels))
            self.last_dirty = dirty
            data = encode_levels(levels)
        return EncodedFrame(
            data=data,
            width=frame.shape[1],
            height=frame.shape[0],
            crf=self.codec.crf,
            is_keyframe=True,
        )

    def decode(
        self, encoded: EncodedFrame, reference: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Decode via the wrapped codec (reuse only affects encoding)."""
        return self.codec.decode(encoded, reference)

    def _remember(self, key: Hashable, ref: _Reference) -> None:
        """LRU-insert a reference, evicting the stalest beyond the cap."""
        self._refs[key] = ref
        self._refs.move_to_end(key)
        while len(self._refs) > self.max_references:
            self._refs.popitem(last=False)
