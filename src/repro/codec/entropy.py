"""Entropy coding: zig-zag scan + DEFLATE.

Quantized DCT blocks are mostly zeros in their high-frequency corner; the
zig-zag scan turns that corner into long zero runs that DEFLATE compresses
to almost nothing, the same structural trick H.264's CAVLC exploits.  The
byte stream this stage produces is what the network model transfers, so
frame *content* (texture detail, coverage) directly becomes frame *size*.
"""

from __future__ import annotations

import zlib
from functools import lru_cache

import numpy as np

from .blocks import BLOCK

_COMPRESSION_LEVEL = 6


@lru_cache(maxsize=1)
def zigzag_order() -> np.ndarray:
    """Flat indices of an 8x8 block in zig-zag (JPEG) scan order."""
    order = sorted(
        ((i, j) for i in range(BLOCK) for j in range(BLOCK)),
        key=lambda ij: (
            ij[0] + ij[1],
            ij[1] if (ij[0] + ij[1]) % 2 else ij[0],
        ),
    )
    return np.array([i * BLOCK + j for i, j in order], dtype=np.intp)


def encode_levels(levels: np.ndarray) -> bytes:
    """Serialize quantized levels: zig-zag scan then DEFLATE."""
    if levels.ndim != 4 or levels.shape[2:] != (BLOCK, BLOCK):
        raise ValueError("levels must be (ny, nx, 8, 8)")
    flat = levels.reshape(levels.shape[0] * levels.shape[1], BLOCK * BLOCK)
    scanned = flat[:, zigzag_order()]
    clipped = np.clip(scanned, -32768, 32767).astype("<i2")
    return zlib.compress(clipped.tobytes(), _COMPRESSION_LEVEL)


def decode_levels(data: bytes, ny: int, nx: int) -> np.ndarray:
    """Inverse of :func:`encode_levels`."""
    if ny < 1 or nx < 1:
        raise ValueError("block grid dimensions must be positive")
    raw = zlib.decompress(data)
    expected = ny * nx * BLOCK * BLOCK * 2
    if len(raw) != expected:
        raise ValueError(
            f"corrupt stream: expected {expected} bytes, got {len(raw)}"
        )
    scanned = np.frombuffer(raw, dtype="<i2").reshape(ny * nx, BLOCK * BLOCK)
    flat = np.empty_like(scanned)
    flat[:, zigzag_order()] = scanned
    return flat.reshape(ny, nx, BLOCK, BLOCK).astype(np.int32)
