"""Quantization with a CRF-style quality knob.

The Coterie server encodes with "x264 with Constant Rate Factor of 25"
(§5.1).  We mirror that interface: :func:`quant_scale` maps a CRF value to
a multiplier on the JPEG luminance quantization matrix, doubling roughly
every 6 CRF steps like x264's quantizer staircase, with CRF 25 as the
unit-scale anchor.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .blocks import BLOCK

DEFAULT_CRF = 25.0

# Standard JPEG luminance quantization matrix (Annex K) — a reasonable
# perceptual weighting for an 8x8 DCT codec.
BASE_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def quant_scale(crf: float) -> float:
    """Quantizer multiplier for a CRF value (doubles every +6 CRF)."""
    if not 0.0 <= crf <= 51.0:
        raise ValueError(f"CRF must be in [0, 51], got {crf}")
    return float(2.0 ** ((crf - DEFAULT_CRF) / 6.0))


@lru_cache(maxsize=16)
def _quant_matrix_cached(crf: float) -> np.ndarray:
    matrix = np.maximum(1.0, BASE_QUANT * quant_scale(crf))
    matrix.setflags(write=False)  # shared across calls; must stay frozen
    return matrix


def quant_matrix(crf: float = DEFAULT_CRF) -> np.ndarray:
    """The scaled quantization matrix for a CRF, clamped to >= 1.

    Hoisted out of the per-block-tensor path: every quantize/dequantize
    used to rebuild the matrix; it is now computed once per CRF and
    returned as a read-only shared array.
    """
    return _quant_matrix_cached(float(crf))


def quantize(coeffs: np.ndarray, crf: float = DEFAULT_CRF) -> np.ndarray:
    """Round DCT coefficients to quantization steps (int32)."""
    if coeffs.shape[-2:] != (BLOCK, BLOCK):
        raise ValueError("coeffs must be (..., 8, 8)")
    q = quant_matrix(crf)
    return np.round(coeffs / q).astype(np.int32)


def dequantize(levels: np.ndarray, crf: float = DEFAULT_CRF) -> np.ndarray:
    """Reconstruct coefficient magnitudes from quantized levels."""
    if levels.shape[-2:] != (BLOCK, BLOCK):
        raise ValueError("levels must be (..., 8, 8)")
    return levels.astype(np.float64) * quant_matrix(crf)
