"""The frame codec: an H.264-like DCT video coder with real byte output.

Coterie's server pre-encodes panoramic far-BE frames with x264 (CRF 25,
fastdecode) and clients decode them with the hardware MediaCodec (§5.1/§6).
This module is the substitute: a genuine lossy transform codec whose output
*size* responds to frame content exactly the way the network model needs —
a far-BE frame with the busy near field stripped compresses to roughly half
the bytes of the whole-BE frame, which is the paper's observation.

Two frame types are supported:

* **I-frames** — standalone intra coding (what the far-BE prefetch store
  uses: any frame must be decodable on a cache hit without neighbours);
* **P-frames** — residual coding against a reference (what the Thin-client
  baseline's continuous stream uses).

Because the simulated displays are 4K while we raster at a reduced
resolution, :meth:`EncodedFrame.wire_bytes` reports the 4K-equivalent size
(pixel-count scaling plus a chroma overhead factor); the raw luma byte
count is kept alongside for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import perf
from .blocks import (
    BLOCK,
    join_blocks,
    join_blocks_stack,
    pad_to_blocks,
    split_blocks,
)
from .dct import forward_dct, inverse_dct
from .entropy import decode_levels, encode_levels
from .quant import DEFAULT_CRF, dequantize, quant_matrix, quantize

# Chroma + container overhead on top of luma when scaling to wire size.
_CHROMA_FACTOR = 1.35
# Our transform coder has no intra prediction, CABAC, or deblocking; x264
# achieves roughly 3.5x better rate at equal quality, so wire sizes are
# scaled down by this calibrated efficiency factor (see DESIGN.md).
X264_EFFICIENCY = 0.28
# The paper's panoramic frames are 3840x2160.
FOUR_K_PIXELS = 3840 * 2160


@dataclass(frozen=True)
class EncodedFrame:
    """A compressed frame as produced by :class:`FrameCodec`."""

    data: bytes
    width: int
    height: int
    crf: float
    is_keyframe: bool

    @property
    def luma_bytes(self) -> int:
        """Actual compressed payload size at render resolution."""
        return len(self.data)

    @property
    def bits_per_pixel(self) -> float:
        return 8.0 * len(self.data) / (self.width * self.height)

    def wire_bytes(self, target_pixels: int = FOUR_K_PIXELS) -> int:
        """Size scaled to the paper's 4K frames (chroma included).

        This is the quantity the network model transfers; see DESIGN.md's
        "4K-equivalent size" note.
        """
        if target_pixels <= 0:
            raise ValueError("target_pixels must be positive")
        scale = target_pixels / (self.width * self.height)
        return int(round(len(self.data) * scale * _CHROMA_FACTOR * X264_EFFICIENCY))


class FrameCodec:
    """Encoder/decoder pair with x264-style CRF quality control."""

    def __init__(self, crf: float = DEFAULT_CRF) -> None:
        from .quant import quant_scale  # validates the range

        quant_scale(crf)
        self.crf = crf

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def _to_levels(self, pixels: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        padded = pad_to_blocks(pixels)
        blocks = split_blocks(padded)
        return quantize(forward_dct(blocks), self.crf), padded.shape

    def encode(
        self, frame: np.ndarray, reference: Optional[np.ndarray] = None
    ) -> EncodedFrame:
        """Encode a luminance frame in [0, 1].

        With ``reference`` (the previous *decoded* frame) a P-frame is
        produced; otherwise an I-frame.
        """
        if frame.ndim != 2:
            raise ValueError("expected a 2D luminance frame")
        if frame.size == 0:
            raise ValueError("empty frame")
        with perf.timed("encode"):
            pixels = np.asarray(frame, dtype=np.float64) * 255.0
            if reference is None:
                levels, _ = self._to_levels(pixels - 128.0)
                is_key = True
            else:
                if reference.shape != frame.shape:
                    raise ValueError("reference shape differs from frame shape")
                residual = pixels - np.asarray(reference, dtype=np.float64) * 255.0
                levels, _ = self._to_levels(residual)
                is_key = False
            data = encode_levels(levels)
        return EncodedFrame(
            data=data,
            width=frame.shape[1],
            height=frame.shape[0],
            crf=self.crf,
            is_keyframe=is_key,
        )

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode(
        self, encoded: EncodedFrame, reference: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Decode back to a luminance frame in [0, 1]."""
        with perf.timed("decode"):
            pad_h = (-encoded.height) % BLOCK
            pad_w = (-encoded.width) % BLOCK
            ny = (encoded.height + pad_h) // BLOCK
            nx = (encoded.width + pad_w) // BLOCK
            levels = decode_levels(encoded.data, ny, nx)
            blocks = inverse_dct(dequantize(levels, encoded.crf))
            pixels = join_blocks(blocks, (encoded.height, encoded.width))
            if encoded.is_keyframe:
                out = pixels + 128.0
            else:
                if reference is None:
                    raise ValueError("P-frame decode requires the reference frame")
                if reference.shape != (encoded.height, encoded.width):
                    raise ValueError("reference shape mismatch")
                out = pixels + np.asarray(reference, dtype=np.float64) * 255.0
            return np.clip(out / 255.0, 0.0, 1.0).astype(np.float32)

    def decode_batch(self, encoded_frames, arena=None):
        """Decode many I-frames in stacked numpy passes.

        The online loop's cross-player decode: frames are grouped by
        ``(height, width, crf)`` and each group's dequantize, inverse
        DCT, block join, and scale/clip run once over an ``(N, ...)``
        stack instead of once per frame.  Entropy decoding stays
        per-frame (variable-length zlib streams cannot batch).  Results
        are bit-identical to :meth:`decode` on each frame.

        Scratch buffers come from ``arena`` (a
        :class:`repro.perf.FrameArena`); the returned float32 frames own
        their memory — they outlive the tick inside frame caches, so
        they are never arena-backed.  P-frames are rejected: the batch
        path serves the far-BE store, which is I-frame only.
        """
        encoded_frames = list(encoded_frames)
        results: list = [None] * len(encoded_frames)
        if not encoded_frames:
            return results
        groups: dict = {}
        for index, encoded in enumerate(encoded_frames):
            if not encoded.is_keyframe:
                raise ValueError("decode_batch only handles I-frames")
            key = (encoded.height, encoded.width, encoded.crf)
            groups.setdefault(key, []).append(index)
        if arena is not None:
            def take(shape, dtype=np.float64):
                return arena.take(shape, dtype)
        else:
            def take(shape, dtype=np.float64):
                return np.empty(shape, dtype=dtype)
        with perf.timed("decode"):
            perf.count("decode.batched_frames", len(encoded_frames))
            perf.count("decode.batches", len(groups))
            for (height, width, crf), indices in groups.items():
                pad_h = (-height) % BLOCK
                pad_w = (-width) % BLOCK
                ny = (height + pad_h) // BLOCK
                nx = (width + pad_w) // BLOCK
                n = len(indices)
                levels = take((n, ny, nx, BLOCK, BLOCK), np.int32)
                for row, index in enumerate(indices):
                    levels[row] = decode_levels(
                        encoded_frames[index].data, ny, nx
                    )
                # dequantize, stacked: int32 levels promote to float64
                # exactly as levels.astype(float64) * q does per frame.
                coeffs = take((n, ny, nx, BLOCK, BLOCK), np.float64)
                np.multiply(levels, quant_matrix(crf), out=coeffs)
                blocks = take((n, ny, nx, BLOCK, BLOCK), np.float64)
                inverse_dct(coeffs, out=blocks)
                joined = take((n, ny * BLOCK, nx * BLOCK), np.float64)
                pixels = join_blocks_stack(blocks, (height, width), out=joined)
                np.add(pixels, 128.0, out=pixels)
                np.divide(pixels, 255.0, out=pixels)
                np.clip(pixels, 0.0, 1.0, out=pixels)
                stack = np.empty((n, height, width), dtype=np.float32)
                np.copyto(stack, pixels)  # same rounding as astype(float32)
                for row, index in enumerate(indices):
                    results[index] = stack[row]
        return results


@dataclass(frozen=True)
class CodecTiming:
    """Encode/decode latency model (hardware-codec speeds).

    x264 on the testbed server encodes a 4K frame in a few ms; the Pixel 2's
    MediaCodec decodes one inside the frame budget.  Latencies scale with
    pixel count of the *wire* (4K-equivalent) frame.
    """

    encode_ms_per_mpixel: float = 0.55  # GTX-class server, x264 fastdecode
    decode_ms_per_mpixel: float = 0.95  # Pixel 2 hardware decoder

    def __post_init__(self) -> None:
        if self.encode_ms_per_mpixel <= 0 or self.decode_ms_per_mpixel <= 0:
            raise ValueError("codec timing rates must be positive")

    def encode_ms(self, pixels: int = FOUR_K_PIXELS) -> float:
        """Server-side encode latency for a frame of ``pixels``."""
        if pixels <= 0:
            raise ValueError("pixels must be positive")
        return pixels / 1e6 * self.encode_ms_per_mpixel

    def decode_ms(self, pixels: int = FOUR_K_PIXELS) -> float:
        """Phone-side hardware decode latency for ``pixels``."""
        if pixels <= 0:
            raise ValueError("pixels must be positive")
        return pixels / 1e6 * self.decode_ms_per_mpixel
