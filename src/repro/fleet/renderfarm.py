"""The shared render farm: batched panorama rendering on finite GPUs.

Coterie's Fig. 11 scalability argument is server-side: FI sync replaces
whole-frame streams, so one server sustains ~10x the players — *if* the
panorama renders those players still demand are scheduled well.  This
module is that scheduler.  A :class:`RenderFarm` owns ``gpu_slots``
identical slots; every active session submits render requests (content
addresses from the :class:`~repro.fleet.store.SharedPanoramaStore`) and
the farm drains them under a deadline-aware priority with a per-session
fairness counter:

* **priority** — pending requests order by ``(deadline, served count of
  the submitting session, submission sequence)``.  Earliest deadline
  first keeps warm-up renders (which gate a session going ACTIVE) ahead
  of steady-state prefetch; the fairness counter stops one large session
  from starving a small one at equal deadlines; the FIFO sequence makes
  the order total and deterministic.
* **batching** — a free slot takes up to ``batch_max`` requests in one
  dispatch and pays ``dispatch_overhead_ms`` once for the whole batch,
  the economics that make a shared farm beat per-session GPUs.  With
  ``cross_session=False`` a batch may only contain one session's
  requests (the isolated-serving comparator).
* **coalescing** — in cross-session mode, a submit whose address is
  already pending or in flight attaches to the existing request instead
  of enqueueing new work: concurrent identical demand costs one render.

Everything is driven by the discrete-event simulator, so a farm run is a
pure function of its submission sequence — two identical fleet runs
produce bit-identical farm statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..metrics.stats import percentile
from ..sim import Event, Simulator


@dataclass
class RenderRequest:
    """One panorama render in flight through the farm."""

    seq: int
    session_id: int
    address: str
    submitted_ms: float
    deadline_ms: float
    #: Fires with the completion time when the render lands.
    done: Event
    completed_ms: Optional[float] = None
    #: How many submits were folded into this request (1 = no coalescing).
    attached: int = 1


@dataclass(frozen=True)
class FarmSnapshot:
    """Deterministic end-of-run farm statistics."""

    renders: int
    batches: int
    coalesced: int
    deadline_misses: int
    queue_peak: int
    mean_batch: float
    mean_wait_ms: float
    p99_wait_ms: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form for summaries and benchmark payloads."""
        return {
            "renders": self.renders,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "deadline_misses": self.deadline_misses,
            "queue_peak": self.queue_peak,
            "mean_batch": round(self.mean_batch, 6),
            "mean_wait_ms": round(self.mean_wait_ms, 6),
            "p99_wait_ms": round(self.p99_wait_ms, 6),
        }


@dataclass
class _FarmCounters:
    """Mutable tallies the snapshot is cut from."""

    renders: int = 0
    batches: int = 0
    coalesced: int = 0
    deadline_misses: int = 0
    queue_peak: int = 0
    waits_ms: List[float] = field(default_factory=list)
    batch_sizes: List[int] = field(default_factory=list)


class RenderFarm:
    """Deadline-aware batching scheduler over a fixed GPU-slot budget."""

    def __init__(
        self,
        sim: Simulator,
        gpu_slots: int = 4,
        render_ms: float = 30.0,
        dispatch_overhead_ms: float = 8.0,
        batch_max: int = 8,
        cross_session: bool = True,
        completion_hook: Optional[Callable[[RenderRequest], None]] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        """``completion_hook`` runs once per finished request (e.g. the
        shared store's ``commit``); ``metrics`` is an optional
        :class:`~repro.telemetry.MetricsHub` that gains a queue-depth
        probe plus render/batch counters and a wait gauge."""
        if gpu_slots < 1:
            raise ValueError("gpu_slots must be >= 1")
        if render_ms <= 0:
            raise ValueError("render_ms must be positive")
        if dispatch_overhead_ms < 0:
            raise ValueError("dispatch_overhead_ms must be non-negative")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.sim = sim
        self.gpu_slots = gpu_slots
        self.render_ms = render_ms
        self.dispatch_overhead_ms = dispatch_overhead_ms
        self.batch_max = batch_max
        self.cross_session = cross_session
        self.completion_hook = completion_hook
        self._free_slots = gpu_slots
        self._pending: List[RenderRequest] = []
        self._live_by_address: Dict[str, RenderRequest] = {}
        self._served: Dict[int, int] = {}
        self._seq = 0
        self.counters = _FarmCounters()
        self._wait_gauge = None
        self._renders_counter = None
        self._coalesced_counter = None
        if metrics is not None and getattr(metrics, "enabled", False):
            depth_gauge = metrics.gauge("farm_queue_depth")
            busy_gauge = metrics.gauge("farm_busy_slots")
            metrics.register_probe(
                lambda: depth_gauge.set(float(len(self._pending)))
            )
            metrics.register_probe(
                lambda: busy_gauge.set(float(self.gpu_slots - self._free_slots))
            )
            self._wait_gauge = metrics.gauge("farm_wait_ms")
            self._renders_counter = metrics.counter("farm_renders_total")
            self._coalesced_counter = metrics.counter("farm_coalesced_total")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, session_id: int, address: str,
               deadline_ms: float) -> Event:
        """Queue one render; the returned event fires at completion.

        In cross-session mode a duplicate address coalesces onto the
        live request and shares its completion event.
        """
        if self.cross_session:
            live = self._live_by_address.get(address)
            if live is not None:
                live.attached += 1
                self.counters.coalesced += 1
                if self._coalesced_counter is not None:
                    self._coalesced_counter.inc()
                return live.done
        request = RenderRequest(
            seq=self._seq,
            session_id=session_id,
            address=address,
            submitted_ms=self.sim.now,
            deadline_ms=deadline_ms,
            done=self.sim.event(),
        )
        self._seq += 1
        self._pending.append(request)
        if self.cross_session:
            self._live_by_address[address] = request
        self.counters.queue_peak = max(
            self.counters.queue_peak, len(self._pending)
        )
        self._dispatch()
        return request.done

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _priority(self, request: RenderRequest) -> tuple:
        """Total order: deadline, then session fairness, then FIFO."""
        return (
            request.deadline_ms,
            self._served.get(request.session_id, 0),
            request.seq,
        )

    def _dispatch(self) -> None:
        """Fill free slots with priority-ordered batches."""
        while self._free_slots > 0 and self._pending:
            ordered = sorted(self._pending, key=self._priority)
            head = ordered[0]
            batch = [head]
            for request in ordered[1:]:
                if len(batch) >= self.batch_max:
                    break
                if self.cross_session or request.session_id == head.session_id:
                    batch.append(request)
            for request in batch:
                self._pending.remove(request)
            self._free_slots -= 1
            self.counters.batches += 1
            self.counters.batch_sizes.append(len(batch))
            busy_ms = self.dispatch_overhead_ms + self.render_ms * len(batch)
            self.sim.schedule(busy_ms, lambda b=batch: self._complete(b))

    def _complete(self, batch: List[RenderRequest]) -> None:
        """Land a batch: stats, fairness credit, hooks, waiter wake-ups."""
        now = self.sim.now
        for request in batch:
            request.completed_ms = now
            wait_ms = now - request.submitted_ms
            self.counters.waits_ms.append(wait_ms)
            self.counters.renders += 1
            if now > request.deadline_ms:
                self.counters.deadline_misses += 1
            self._served[request.session_id] = (
                self._served.get(request.session_id, 0) + 1
            )
            if self.cross_session:
                self._live_by_address.pop(request.address, None)
            if self._wait_gauge is not None:
                self._wait_gauge.set(wait_ms)
            if self._renders_counter is not None:
                self._renders_counter.inc()
            if self.completion_hook is not None:
                self.completion_hook(request)
            request.done.succeed(now)
        self._free_slots += 1
        self._dispatch()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests waiting for a slot right now."""
        return len(self._pending)

    def served(self, session_id: int) -> int:
        """Completed renders credited to ``session_id`` (fairness count)."""
        return self._served.get(session_id, 0)

    def snapshot(self) -> FarmSnapshot:
        """Freeze the counters into an immutable summary."""
        c = self.counters
        return FarmSnapshot(
            renders=c.renders,
            batches=c.batches,
            coalesced=c.coalesced,
            deadline_misses=c.deadline_misses,
            queue_peak=c.queue_peak,
            mean_batch=(
                sum(c.batch_sizes) / len(c.batch_sizes) if c.batch_sizes else 0.0
            ),
            mean_wait_ms=(
                sum(c.waits_ms) / len(c.waits_ms) if c.waits_ms else 0.0
            ),
            p99_wait_ms=(
                percentile(c.waits_ms, 99.0) if c.waits_ms else 0.0
            ),
        )
