"""The fleet runner: arrivals -> matchmaker -> admission -> render farm.

One :func:`run_fleet` call wires the fleet components onto a single
discrete-event simulator and drains it:

1. the arrival trace (given, or generated from the configured workload)
   schedules one matchmaker event per player;
2. the :class:`~repro.fleet.matchmaker.Matchmaker` forms groups and the
   :class:`~repro.fleet.admission.FleetAdmissionController` judges them
   against the fleet budget, discounting render demand by the shared
   store's live dedup ratio;
3. every admitted session becomes a serving process: its warm-up demand
   points must clear the :class:`~repro.fleet.renderfarm.RenderFarm`
   before the session goes ACTIVE (that span, from each player's
   arrival, is the join latency), after which the remaining demand
   stream replays at trace pace;
4. the run ends when the event queue drains — every session completed
   or rejected — and the tallies freeze into a :class:`FleetSummary`
   whose equality is the fleet's bit-identity surface.

Two fidelities share this control plane.  ``"model"`` (the default)
serves sessions from their derived demand streams only — cheap enough
for hundreds of sessions.  ``"full"`` additionally replays every
admitted session through the real single-session engine
(:func:`repro.systems.run_system`) with its own seed; session 0 uses the
fleet seed itself, which pins a 1-session fleet run bit-identical to the
equivalent ``repro run``.  The fleet layer never touches the
single-session path: a plain ``repro run`` constructs no fleet objects
at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.store import world_cache_key
from ..metrics.stats import percentile
from ..sim import Simulator, all_of
from ..systems import SYSTEMS, RunResult, SessionConfig, run_system
from ..world import ALL_GAMES, load_game
from .admission import FleetAdmissionController, FleetBudget, FleetDecision, SessionEstimate
from .arrivals import WORKLOADS, ArrivalTrace, generate_arrivals
from .demand import SessionDemand, demand_for
from .matchmaker import LobbyConfig, Matchmaker
from .renderfarm import FarmSnapshot, RenderFarm
from .slo import JOIN_BUCKETS_MS
from .store import SharedPanoramaStore

#: Serving fidelities: demand-stream model vs full per-session replay.
FIDELITIES = ("model", "full")

#: Preprocessing seed embedded in fleet world keys — matches the
#: :func:`repro.systems.prepare_artifacts` default so fleet addresses
#: agree with the offline pipeline's disk-cache addresses.
_WORLD_KEY_SEED = 3


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet run depends on (all defaults deterministic).

    ``arrivals`` overrides the generated workload when given — that is
    how CI replays a committed trace file.  ``shared=False`` disables
    both cross-session dedup and cross-session batching, turning the
    fleet into per-session isolated serving at the same GPU budget (the
    benchmark comparator).
    """

    workload: str = "poisson"
    rate_per_s: float = 2.0
    duration_s: float = 30.0
    seed: int = 7
    games: Tuple[str, ...] = ("racing",)
    arrivals: Optional[ArrivalTrace] = None
    lobby: LobbyConfig = field(default_factory=LobbyConfig)
    budget: FleetBudget = field(default_factory=FleetBudget)
    session_duration_s: float = 10.0
    stride_ms: float = 50.0
    spacing_m: float = 2.0
    warmup_points: int = 4
    batch_max: int = 8
    dispatch_overhead_ms: float = 8.0
    deadline_ms: float = 250.0
    shared: bool = True
    fidelity: str = "model"
    system: str = "coterie"

    def __post_init__(self) -> None:
        """Validate the run parameters."""
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; known: {WORKLOADS}"
            )
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self.games:
            raise ValueError("need at least one game")
        if self.session_duration_s <= 0:
            raise ValueError("session_duration_s must be positive")
        if self.stride_ms <= 0:
            raise ValueError("stride_ms must be positive")
        if self.spacing_m <= 0:
            raise ValueError("spacing_m must be positive")
        if self.warmup_points < 0:
            raise ValueError("warmup_points must be non-negative")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.dispatch_overhead_ms < 0:
            raise ValueError("dispatch_overhead_ms must be non-negative")
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.fidelity not in FIDELITIES:
            raise ValueError(
                f"unknown fidelity {self.fidelity!r}; known: {FIDELITIES}"
            )
        if self.system not in SYSTEMS:
            raise ValueError(
                f"unknown system {self.system!r}; known: {SYSTEMS}"
            )

    def resolve_arrivals(self) -> ArrivalTrace:
        """The run's arrival trace: explicit, else generated and seeded."""
        if self.arrivals is not None:
            return self.arrivals
        return generate_arrivals(
            self.workload, self.rate_per_s, self.duration_s, self.seed,
            self.games,
        )


@dataclass(frozen=True)
class SessionReport:
    """One admitted session's deterministic serving record."""

    session_id: int
    game: str
    players: int
    admitted_ms: float
    active_ms: float
    end_ms: float
    join_ms: Tuple[float, ...]
    demand_points: int
    store_hits: int
    farm_renders: int


@dataclass(frozen=True)
class FleetSummary:
    """The fleet run's full determinism surface.

    Two runs of the same :class:`FleetConfig` must produce ``==``
    summaries, bit for bit — the fleet determinism tests and the
    ``--verify-determinism`` CLI leg compare exactly this object.
    """

    games: Tuple[str, ...]
    arrivals: int
    horizon_ms: float
    makespan_ms: float
    players_arrived: int
    players_matched: int
    players_rejected: int
    players_unmatched: int
    sessions_formed: int
    sessions_admitted: int
    sessions_rejected: int
    admission_retries: int
    rejects_by_reason: Tuple[Tuple[str, int], ...]
    sessions_completed: int
    sessions_per_s: float
    join_count: int
    join_mean_ms: float
    join_p50_ms: float
    join_p99_ms: float
    farm: FarmSnapshot
    store_lookups: int
    store_hits: int
    store_misses: int
    dedup_ratio: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested form for benchmark payloads."""
        return {
            "games": list(self.games),
            "arrivals": self.arrivals,
            "horizon_ms": round(self.horizon_ms, 6),
            "makespan_ms": round(self.makespan_ms, 6),
            "players": {
                "arrived": self.players_arrived,
                "matched": self.players_matched,
                "rejected": self.players_rejected,
                "unmatched": self.players_unmatched,
            },
            "sessions": {
                "formed": self.sessions_formed,
                "admitted": self.sessions_admitted,
                "rejected": self.sessions_rejected,
                "retries": self.admission_retries,
                "completed": self.sessions_completed,
                "rejects_by_reason": dict(self.rejects_by_reason),
            },
            "sessions_per_s": round(self.sessions_per_s, 6),
            "join_ms": {
                "count": self.join_count,
                "mean": round(self.join_mean_ms, 6),
                "p50": round(self.join_p50_ms, 6),
                "p99": round(self.join_p99_ms, 6),
            },
            "farm": self.farm.to_dict(),
            "store": {
                "lookups": self.store_lookups,
                "hits": self.store_hits,
                "misses": self.store_misses,
                "hit_ratio": round(self.dedup_ratio, 6),
            },
        }


@dataclass(frozen=True)
class FleetResult:
    """A fleet run's outputs: summary, per-session records, replays."""

    summary: FleetSummary
    sessions: Tuple[SessionReport, ...]
    #: Full-fidelity per-session :class:`~repro.systems.RunResult`
    #: replays, in session-id order (empty under the model fidelity).
    session_runs: Tuple[RunResult, ...]


class _FleetRun:
    """Mutable state of one in-flight fleet simulation."""

    def __init__(self, config: FleetConfig, trace: ArrivalTrace,
                 metrics: Optional[Any]) -> None:
        """Build the component graph for one run."""
        self.config = config
        self.trace = trace
        self.sim = Simulator(metrics=metrics)
        self.store = SharedPanoramaStore(
            shared=config.shared, spacing_m=config.spacing_m
        )
        self.farm = RenderFarm(
            self.sim,
            gpu_slots=config.budget.gpu_slots,
            render_ms=config.budget.render_ms,
            dispatch_overhead_ms=config.dispatch_overhead_ms,
            batch_max=config.batch_max,
            cross_session=config.shared,
            completion_hook=lambda request: self.store.commit(request.address),
            metrics=metrics,
        )
        self.controller = FleetAdmissionController(
            config.budget, miss_ratio=self.store.expected_miss_ratio
        )
        self.matchmaker = Matchmaker(
            self.sim,
            LobbyConfig(
                session_size=config.lobby.session_size,
                min_session_size=config.lobby.min_session_size,
                max_wait_ms=config.lobby.max_wait_ms,
                retry_ms=config.lobby.retry_ms,
                patience_ms=config.lobby.patience_ms,
            ),
            self.controller,
            estimate_for=self._estimate_for,
            launch=self._launch,
            active_estimates=self._active_estimates,
            metrics=metrics,
        )
        self._active: Dict[int, SessionEstimate] = {}
        self._next_id = 0
        self.reports: List[SessionReport] = []
        self.joins: List[float] = []
        self.completed = 0
        reference = SessionConfig()
        for game in trace.games():
            if game not in ALL_GAMES:
                raise ValueError(
                    f"unknown game {game!r} in arrival trace; "
                    f"known: {tuple(ALL_GAMES)}"
                )
            world = load_game(game)
            self.store.register_world(game, world_cache_key(
                game, world.scale, _WORLD_KEY_SEED,
                reference.render_config, reference.codec_crf,
                world.spec.player.eye_height,
            ))
        self._join_gauge = None
        self._join_hist = None
        self._admitted_counter = None
        self._completed_counter = None
        if metrics is not None and getattr(metrics, "enabled", False):
            self._join_gauge = metrics.gauge("join_latency_ms")
            self._join_hist = metrics.histogram(
                "fleet_join_latency_ms", edges=JOIN_BUCKETS_MS
            )
            self._admitted_counter = metrics.counter(
                "fleet_sessions_admitted_total"
            )
            self._completed_counter = metrics.counter(
                "fleet_sessions_completed_total"
            )
            active_gauge = metrics.gauge("fleet_active_sessions")
            metrics.register_probe(
                lambda: active_gauge.set(float(len(self._active)))
            )
            dedup_gauge = metrics.gauge("fleet_dedup_ratio")
            metrics.register_probe(
                lambda: dedup_gauge.set(self.store.hit_ratio)
            )

    # ------------------------------------------------------------------
    # Matchmaker collaborators
    # ------------------------------------------------------------------

    def _demand(self, game: str, players: int, seed: int) -> SessionDemand:
        """The demand stream of one (prospective) session."""
        return demand_for(
            game, players, self.config.session_duration_s, seed,
            stride_ms=self.config.stride_ms,
            spacing_m=self.config.spacing_m,
        )

    def _estimate_for(self, game: str, players: int) -> SessionEstimate:
        """Admission forecast for the *next* session slot's seed."""
        seed = self.config.seed + self._next_id
        return self._demand(game, players, seed).estimate()

    def _active_estimates(self) -> List[SessionEstimate]:
        """Live session estimates in deterministic (session-id) order."""
        return [self._active[sid] for sid in sorted(self._active)]

    def _launch(self, game: str, members: Tuple[float, ...],
                decision: FleetDecision) -> None:
        """Start serving an admitted session."""
        session_id = self._next_id
        self._next_id += 1
        seed = self.config.seed + session_id
        demand = self._demand(game, len(members), seed)
        self._active[session_id] = demand.estimate()
        if self._admitted_counter is not None:
            self._admitted_counter.inc()
        self.sim.spawn(self._serve(session_id, game, members, demand))

    # ------------------------------------------------------------------
    # Session serving process
    # ------------------------------------------------------------------

    def _serve(self, session_id: int, game: str,
               members: Tuple[float, ...], demand: SessionDemand):
        """Generator process: warm-up, ACTIVE, demand replay, teardown."""
        t0 = self.sim.now
        warm = demand.points[: self.config.warmup_points]
        rest = demand.points[self.config.warmup_points:]
        warm_events = []
        for point in warm:
            hit, address = self.store.lookup(session_id, game, point.grid_point)
            if not hit:
                warm_events.append(self.farm.submit(
                    session_id, address, t0 + self.config.deadline_ms
                ))
        if warm_events:
            yield all_of(self.sim, warm_events)
        active_ms = self.sim.now
        join_ms = tuple(active_ms - arrival for arrival in members)
        for join in join_ms:
            self.joins.append(join)
            if self._join_gauge is not None:
                self._join_gauge.set(join)
                self._join_hist.observe(join)
        outstanding = []
        for point in rest:
            target = t0 + point.t_offset_ms
            if target > self.sim.now:
                yield target - self.sim.now
            hit, address = self.store.lookup(session_id, game, point.grid_point)
            if not hit:
                outstanding.append(self.farm.submit(
                    session_id, address,
                    self.sim.now + self.config.deadline_ms,
                ))
        end_target = t0 + demand.duration_ms
        if end_target > self.sim.now:
            yield end_target - self.sim.now
        pending = [event for event in outstanding if not event.triggered]
        if pending:
            yield all_of(self.sim, pending)
        del self._active[session_id]
        self.completed += 1
        if self._completed_counter is not None:
            self._completed_counter.inc()
        self.reports.append(SessionReport(
            session_id=session_id,
            game=game,
            players=len(members),
            admitted_ms=t0,
            active_ms=active_ms,
            end_ms=self.sim.now,
            join_ms=join_ms,
            demand_points=len(demand.points),
            store_hits=self.store.session_hits.get(session_id, 0),
            farm_renders=self.farm.served(session_id),
        ))

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------

    def summarize(self) -> FleetSummary:
        """Freeze the run's tallies (call after the queue drains)."""
        stats = self.matchmaker.stats
        makespan_ms = self.sim.now
        sessions_per_s = (
            self.completed / (makespan_ms / 1000.0) if makespan_ms > 0 else 0.0
        )
        joins = self.joins
        return FleetSummary(
            games=self.trace.games(),
            arrivals=len(self.trace),
            horizon_ms=self.trace.horizon_ms,
            makespan_ms=makespan_ms,
            players_arrived=stats.players_arrived,
            players_matched=stats.players_matched,
            players_rejected=stats.players_rejected,
            players_unmatched=self.matchmaker.waiting(),
            sessions_formed=stats.sessions_formed,
            sessions_admitted=stats.sessions_admitted,
            sessions_rejected=stats.sessions_rejected,
            admission_retries=stats.admission_retries,
            rejects_by_reason=tuple(sorted(stats.rejects_by_reason.items())),
            sessions_completed=self.completed,
            sessions_per_s=sessions_per_s,
            join_count=len(joins),
            join_mean_ms=sum(joins) / len(joins) if joins else 0.0,
            join_p50_ms=percentile(joins, 50.0) if joins else 0.0,
            join_p99_ms=percentile(joins, 99.0) if joins else 0.0,
            farm=self.farm.snapshot(),
            store_lookups=self.store.lookups,
            store_hits=self.store.hits,
            store_misses=self.store.misses,
            dedup_ratio=self.store.hit_ratio,
        )


def run_fleet(config: FleetConfig,
              metrics: Optional[Any] = None) -> FleetResult:
    """Simulate one fleet serving run end to end.

    ``metrics`` is an optional :class:`~repro.telemetry.MetricsHub`; when
    given, the run feeds the fleet gauges/counters (including the stock
    ``join_latency_ms`` series the join-latency SLO evaluates) without
    perturbing the simulation.  Returns the frozen summary, per-session
    reports in completion order, and — under ``fidelity="full"`` — one
    real single-session replay per admitted session.
    """
    trace = config.resolve_arrivals()
    run = _FleetRun(config, trace, metrics)
    run.matchmaker.feed(trace)
    run.sim.run()
    summary = run.summarize()
    session_runs: List[RunResult] = []
    if config.fidelity == "full":
        for report in sorted(run.reports, key=lambda r: r.session_id):
            session_runs.append(run_system(
                config.system,
                report.game,
                report.players,
                SessionConfig(
                    duration_s=config.session_duration_s,
                    seed=config.seed + report.session_id,
                ),
            ))
    return FleetResult(
        summary=summary,
        sessions=tuple(run.reports),
        session_runs=tuple(session_runs),
    )
