"""Cross-session panorama dedup: a fleet facade over content addressing.

Coterie's far-BE panoramas are pure functions of (world key, grid point)
— that is what lets :class:`repro.core.store.PanoramaDiskCache` persist
them across processes.  The same purity means two *sessions* of the same
game demanding the same grid point need only one render, fleet-wide.
:class:`SharedPanoramaStore` is the bookkeeping half of that argument: it
addresses every demand point with the exact same canonical-JSON SHA-256
scheme as the disk cache (via :func:`repro.core.store.content_digest`
over a :func:`repro.core.store.world_cache_key` document), tracks which
addresses the render farm has already produced, and reports the
fleet-wide hit ratio that admission control feeds back into its render
budget.

The ``shared=False`` mode namespaces every address by session id, which
makes each session's working set disjoint by construction — that is the
per-session isolated-serving comparator ``bench_fleet.py`` measures
against, with everything else (scheduler, budgets, arrivals) held equal.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from ..core.store import CACHE_SCHEMA_VERSION, content_digest
from ..geometry import GridPoint


class SharedPanoramaStore:
    """Fleet-wide rendered-panorama index with per-session accounting.

    The store never holds pixels — the fleet model cares about *which*
    renders happen, not their contents — so an entry is just its
    content address.  ``lookup`` answers "has the farm already rendered
    this demand point for anyone?"; ``commit`` records a completed
    render.  Hits and misses are counted fleet-wide and per session.
    """

    def __init__(self, shared: bool = True, spacing_m: float = 2.0) -> None:
        """``shared=False`` namespaces addresses per session (no dedup).

        ``spacing_m`` is the demand-cell edge the grid points were
        quantized at; it is embedded in every address so entries from
        differently-quantized runs can never alias.
        """
        if spacing_m <= 0:
            raise ValueError("spacing_m must be positive")
        self.shared = shared
        self.spacing_m = float(spacing_m)
        self._worlds: Dict[str, Dict[str, Any]] = {}
        self._rendered: set = set()
        self.hits = 0
        self.misses = 0
        self.session_hits: Dict[int, int] = {}
        self.session_misses: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def register_world(self, game: str, world_key: Mapping[str, Any]) -> None:
        """Pin the world-key document every address for ``game`` embeds.

        Build ``world_key`` with :func:`repro.core.store.world_cache_key`
        so fleet addresses and disk-cache addresses agree on what
        invalidates a panorama.
        """
        self._worlds[game] = dict(world_key)

    def address(self, game: str, grid_point: GridPoint,
                session_id: int = 0) -> str:
        """The content address of one demand point's far-BE panorama."""
        try:
            world = self._worlds[game]
        except KeyError:
            raise KeyError(
                f"game {game!r} has no registered world key; "
                "call register_world first"
            ) from None
        payload: Dict[str, Any] = {
            "grid": [int(grid_point[0]), int(grid_point[1])],
            "spacing_m": self.spacing_m,
            "kind": "far",
        }
        if not self.shared:
            payload["session"] = int(session_id)
        document = {
            "schema": CACHE_SCHEMA_VERSION,
            "world": world,
            "namespace": "fleet-frame",
            "payload": payload,
        }
        return content_digest(document)

    # ------------------------------------------------------------------
    # Lookup / commit protocol
    # ------------------------------------------------------------------

    def lookup(self, session_id: int, game: str,
               grid_point: GridPoint) -> Tuple[bool, str]:
        """``(hit, address)`` for one demand point, updating counters.

        A miss means the caller must submit the address to the render
        farm and :meth:`commit` it when the render completes; concurrent
        misses on the same address are the farm's coalescing problem,
        not the store's.
        """
        address = self.address(game, grid_point, session_id)
        hit = address in self._rendered
        if hit:
            self.hits += 1
            self.session_hits[session_id] = (
                self.session_hits.get(session_id, 0) + 1
            )
        else:
            self.misses += 1
            self.session_misses[session_id] = (
                self.session_misses.get(session_id, 0) + 1
            )
        return hit, address

    def commit(self, address: str) -> None:
        """Record a completed render; later lookups of ``address`` hit."""
        self._rendered.add(address)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def lookups(self) -> int:
        """Total demand points addressed through the store."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fleet-wide dedup hit ratio (0 before any lookup)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    @property
    def rendered_count(self) -> int:
        """Distinct panoramas committed so far."""
        return len(self._rendered)

    def expected_miss_ratio(self, floor: float = 0.05) -> float:
        """The admission controller's render-demand discount.

        Before any evidence (or whenever dedup is disabled) every demand
        point is assumed to need a render — ratio 1.0.  Once the store
        has observed lookups, the cumulative miss ratio is the best
        deterministic forecast of how much of a new session's demand
        will reach the GPUs; ``floor`` keeps admission from assuming
        renders are ever entirely free.
        """
        if not self.shared or not self.lookups:
            return 1.0
        return max(floor, self.misses / self.lookups)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready counters for summaries and benchmark payloads."""
        return {
            "shared": self.shared,
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio, 6),
            "rendered": self.rendered_count,
        }
