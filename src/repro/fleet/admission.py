"""Fleet-level admission control: Constraints 1 and 2 at datacenter scope.

:mod:`repro.session.admission` gates one session's roster — can this
*device roster* still render FI + near BE inside the frame budget
(Constraint 1) and fit the shared wireless medium (Constraint 2)?  The
fleet lifts the same two constraints one level up, where the contended
resources are the render farm's GPU slots and the serving backhaul:

* **Constraint 1 (fleet form)** — the aggregate panorama-render demand
  of every active session, *discounted by the shared store's observed
  dedup ratio*, must fit the farm's sustainable render throughput
  (``gpu_slots x 1000/render_ms``, derated by ``render_headroom``).
  This is where cross-session dedup turns into capacity: as the store's
  hit ratio climbs, each admitted session charges the budget less, so
  the same GPUs admit more sessions — the mechanism ``bench_fleet``
  measures as a sessions/sec win over isolated serving.
* **Constraint 2 (fleet form)** — the sum of every admitted session's
  per-player BE fetch streams plus FI sync fanout must fit the
  backhaul's usable capacity, evaluated with the *same*
  :func:`repro.core.constraint.satisfies_bandwidth_constraint` the
  per-session supervisor uses (client-side caching does not shrink
  downloads, so no dedup discount applies here).

Decisions are pure functions of (budget, active estimates, candidate,
miss ratio), so a fleet run's admission sequence is deterministic and
replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.constraint import BandwidthBudget, satisfies_bandwidth_constraint

#: Decision reasons, in check order.
REASONS = ("admitted", "fleet-full", "constraint-1", "constraint-2")


@dataclass(frozen=True)
class FleetBudget:
    """The fleet's finite serving resources.

    ``render_headroom`` derates the farm's nominal render throughput the
    way :class:`~repro.core.constraint.RenderBudget.headroom` derates the
    device frame budget: dispatch overhead, batching latency, and demand
    jitter mean a farm admitted to 100 % of nominal would blow every
    deadline the moment a flash crowd lands.
    """

    gpu_slots: int = 4
    render_ms: float = 30.0
    bandwidth_mbps: float = 2000.0
    utilization_bound: float = 0.8
    render_headroom: float = 0.8
    max_sessions: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate every budget parameter."""
        if self.gpu_slots < 1:
            raise ValueError("gpu_slots must be >= 1")
        if self.render_ms <= 0:
            raise ValueError("render_ms must be positive")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")
        if not 0 < self.utilization_bound <= 1.0:
            raise ValueError("utilization_bound must be in (0, 1]")
        if not 0 < self.render_headroom <= 1.0:
            raise ValueError("render_headroom must be in (0, 1]")
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1 when set")

    @property
    def bandwidth(self) -> BandwidthBudget:
        """The backhaul as a Constraint-2 budget."""
        return BandwidthBudget(
            capacity_mbps=self.bandwidth_mbps,
            utilization_bound=self.utilization_bound,
        )

    @property
    def usable_renders_per_s(self) -> float:
        """Sustainable farm throughput after headroom derating."""
        return self.gpu_slots * (1000.0 / self.render_ms) * self.render_headroom


@dataclass(frozen=True)
class SessionEstimate:
    """One session's forecast resource demand, pre-dedup.

    ``renders_per_s`` is the session's raw demand-point rate (unique
    grid points per second across its roster); the controller applies
    the dedup discount, not the estimator.
    """

    players: int
    renders_per_s: float
    be_kbps_per_player: float
    fi_kbps: float

    def __post_init__(self) -> None:
        """Validate the estimate's fields."""
        if self.players < 1:
            raise ValueError("players must be >= 1")
        if self.renders_per_s < 0:
            raise ValueError("renders_per_s must be non-negative")
        if self.be_kbps_per_player < 0:
            raise ValueError("be_kbps_per_player must be non-negative")
        if self.fi_kbps < 0:
            raise ValueError("fi_kbps must be non-negative")


@dataclass(frozen=True)
class FleetDecision:
    """The verdict on one candidate session, with its predicted loads."""

    admitted: bool
    #: One of :data:`REASONS`.
    reason: str
    #: Active session count if (reason: when) the candidate is admitted.
    sessions_after: int
    #: Post-discount fleet render demand including the candidate.
    predicted_renders_per_s: float
    #: ``predicted_renders_per_s`` over the usable farm throughput.
    render_utilization: float
    #: Aggregate BE + FI traffic including the candidate, in Mbps.
    predicted_mbps: float
    #: The dedup discount (expected miss ratio) the prediction used.
    miss_ratio: float


class FleetAdmissionController:
    """Evaluates candidate sessions against a :class:`FleetBudget`.

    ``miss_ratio`` is a zero-argument callable returning the current
    expected render miss ratio in (0, 1] — normally the shared store's
    :meth:`~repro.fleet.store.SharedPanoramaStore.expected_miss_ratio`.
    It is read once per evaluation so a decision is a snapshot, never a
    mid-decision moving target.
    """

    def __init__(
        self,
        budget: FleetBudget,
        miss_ratio: Callable[[], float] = lambda: 1.0,
    ) -> None:
        """Bind the budget and the live dedup-discount source."""
        self.budget = budget
        self._miss_ratio = miss_ratio
        self.evaluations = 0

    def evaluate(
        self,
        active: Sequence[SessionEstimate],
        candidate: SessionEstimate,
    ) -> FleetDecision:
        """Judge ``candidate`` given the currently active sessions.

        Checks run in :data:`REASONS` order — fleet-full, then
        Constraint 1 (render throughput), then Constraint 2 (backhaul) —
        and the first violated check names the decision's reason.
        """
        self.evaluations += 1
        sessions_after = len(active) + 1
        miss = min(1.0, max(0.0, float(self._miss_ratio())))
        roster = list(active) + [candidate]
        demand = sum(est.renders_per_s for est in roster) * miss
        usable = self.budget.usable_renders_per_s
        utilization = demand / usable if usable > 0 else float("inf")
        per_player_be = self._per_player_be(roster)
        fi_total = sum(est.fi_kbps for est in roster)
        total_mbps = (sum(per_player_be) + fi_total) / 1000.0
        if (
            self.budget.max_sessions is not None
            and sessions_after > self.budget.max_sessions
        ):
            reason = "fleet-full"
        elif demand > usable:
            reason = "constraint-1"
        elif not satisfies_bandwidth_constraint(
            per_player_be, fi_total, self.budget.bandwidth
        ):
            reason = "constraint-2"
        else:
            reason = "admitted"
        return FleetDecision(
            admitted=reason == "admitted",
            reason=reason,
            sessions_after=sessions_after,
            predicted_renders_per_s=demand,
            render_utilization=utilization,
            predicted_mbps=total_mbps,
            miss_ratio=miss,
        )

    @staticmethod
    def _per_player_be(roster: Sequence[SessionEstimate]) -> List[float]:
        """Flatten the roster into one BE estimate per co-served player."""
        streams: List[float] = []
        for est in roster:
            streams.extend([est.be_kbps_per_player] * est.players)
        return streams
