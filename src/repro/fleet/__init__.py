"""Fleet-scale multi-session serving: matchmaking, shared render farm,
cross-session panorama dedup.

Single-session runs (:mod:`repro.systems`) answer "does one Coterie
session hit its QoE targets?".  This package answers the production
question one level up: how many *sessions* can a fixed pool of server
GPUs and backhaul sustain, and what join latency do players see while
the fleet is busy?  The leverage comes from the same frame-similarity
argument the paper makes within a session — far-BE panoramas are pure
functions of (world, grid point), so identical demand across sessions
needs one render, fleet-wide.

Components (one module each):

* :mod:`~repro.fleet.arrivals` — seeded Poisson / diurnal / flash-crowd
  player-arrival workloads, plus the committed trace-file format;
* :mod:`~repro.fleet.matchmaker` — per-game lobbies with
  fill-or-timeout formation and patience-bounded admission retries;
* :mod:`~repro.fleet.admission` — Constraints 1 and 2 lifted to fleet
  scope (GPU render throughput, serving backhaul);
* :mod:`~repro.fleet.store` — the cross-session dedup facade over the
  content-addressed panorama store;
* :mod:`~repro.fleet.renderfarm` — deadline-aware batched render
  scheduling on finite GPU slots with per-session fairness;
* :mod:`~repro.fleet.demand` — per-session demand streams derived from
  real party trajectories;
* :mod:`~repro.fleet.slo` — fleet serving objectives with burn-rate
  alerting;
* :mod:`~repro.fleet.simulation` — the runner tying it together under
  ``repro fleet``.
"""

from .admission import (
    REASONS,
    FleetAdmissionController,
    FleetBudget,
    FleetDecision,
    SessionEstimate,
)
from .arrivals import (
    WORKLOADS,
    ArrivalTrace,
    PlayerArrival,
    diurnal_arrivals,
    flash_crowd_arrivals,
    generate_arrivals,
    poisson_arrivals,
)
from .demand import (
    DemandPoint,
    SessionDemand,
    demand_for,
    fi_sync_kbps,
    session_demand,
)
from .matchmaker import LobbyConfig, Matchmaker, MatchmakerStats
from .renderfarm import FarmSnapshot, RenderFarm, RenderRequest
from .simulation import (
    FIDELITIES,
    FleetConfig,
    FleetResult,
    FleetSummary,
    SessionReport,
    run_fleet,
)
from .slo import FLEET_BURN_RULES, JOIN_BUCKETS_MS, fleet_slos
from .store import SharedPanoramaStore

__all__ = [
    "ArrivalTrace",
    "DemandPoint",
    "FIDELITIES",
    "FLEET_BURN_RULES",
    "FarmSnapshot",
    "FleetAdmissionController",
    "FleetBudget",
    "FleetConfig",
    "FleetDecision",
    "FleetResult",
    "FleetSummary",
    "JOIN_BUCKETS_MS",
    "LobbyConfig",
    "Matchmaker",
    "MatchmakerStats",
    "PlayerArrival",
    "REASONS",
    "RenderFarm",
    "RenderRequest",
    "SessionDemand",
    "SessionEstimate",
    "SessionReport",
    "SharedPanoramaStore",
    "WORKLOADS",
    "demand_for",
    "diurnal_arrivals",
    "fi_sync_kbps",
    "flash_crowd_arrivals",
    "fleet_slos",
    "generate_arrivals",
    "poisson_arrivals",
    "run_fleet",
    "session_demand",
]
