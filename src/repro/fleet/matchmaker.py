"""The matchmaker: per-game lobbies feeding fleet admission control.

Players arrive one at a time (an :class:`~repro.fleet.arrivals
.ArrivalTrace` scheduled onto the simulator); the matchmaker holds them
in a per-game lobby until either the lobby reaches ``session_size`` or
its oldest member has waited ``max_wait_ms`` and at least
``min_session_size`` players are present — the classic
fill-or-timeout lobby.  Every formed group is then judged by the
:class:`~repro.fleet.admission.FleetAdmissionController`; a rejected
group does not disband immediately but re-applies every ``retry_ms``
until its oldest member has waited ``patience_ms`` in total, modelling
players who tolerate a short queue but quit on a long one.

All state transitions happen inside simulator events, so the full
matchmaking history — formations, retries, rejections, per-player join
latency — is a deterministic function of (trace, config, admission
state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim import Simulator
from .admission import FleetAdmissionController, FleetDecision, SessionEstimate
from .arrivals import ArrivalTrace


@dataclass(frozen=True)
class LobbyConfig:
    """Matchmaking knobs."""

    session_size: int = 4
    min_session_size: int = 2
    max_wait_ms: float = 1500.0
    retry_ms: float = 250.0
    patience_ms: float = 4000.0

    def __post_init__(self) -> None:
        """Validate the lobby parameters."""
        if self.session_size < 1:
            raise ValueError("session_size must be >= 1")
        if not 1 <= self.min_session_size <= self.session_size:
            raise ValueError(
                "min_session_size must be in [1, session_size]"
            )
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.retry_ms <= 0:
            raise ValueError("retry_ms must be positive")
        if self.patience_ms < self.max_wait_ms:
            raise ValueError("patience_ms must be >= max_wait_ms")


@dataclass
class MatchmakerStats:
    """Deterministic matchmaking tallies for the fleet summary."""

    players_arrived: int = 0
    players_matched: int = 0
    players_rejected: int = 0
    sessions_formed: int = 0
    sessions_admitted: int = 0
    sessions_rejected: int = 0
    admission_retries: int = 0
    rejects_by_reason: Dict[str, int] = field(default_factory=dict)


class Matchmaker:
    """Groups an arrival stream into admitted sessions.

    Collaborators are injected as callables so the matchmaker stays a
    pure scheduling component:

    * ``estimate_for(game, n_players)`` — the admission forecast for a
      prospective session (the runner derives it from trajectory
      demand);
    * ``launch(game, member_arrival_ts, decision)`` — start an admitted
      session; the runner registers its estimate as active and spawns
      its serving process;
    * ``active_estimates()`` — the estimates of every currently active
      session, in a deterministic order.
    """

    def __init__(
        self,
        sim: Simulator,
        config: LobbyConfig,
        controller: FleetAdmissionController,
        estimate_for: Callable[[str, int], SessionEstimate],
        launch: Callable[[str, Tuple[float, ...], FleetDecision], None],
        active_estimates: Callable[[], Sequence[SessionEstimate]],
        metrics: Optional[Any] = None,
    ) -> None:
        """Wire the matchmaker to its simulator and collaborators."""
        self.sim = sim
        self.config = config
        self.controller = controller
        self.estimate_for = estimate_for
        self.launch = launch
        self.active_estimates = active_estimates
        self._lobbies: Dict[str, List[float]] = {}
        self.stats = MatchmakerStats()
        self._formed_counter = None
        self._rejected_counter = None
        self._lobby_gauge = None
        if metrics is not None and getattr(metrics, "enabled", False):
            self._formed_counter = metrics.counter("fleet_sessions_formed_total")
            self._rejected_counter = metrics.counter(
                "fleet_sessions_rejected_total"
            )
            lobby_gauge = metrics.gauge("fleet_lobby_waiting")
            metrics.register_probe(
                lambda: lobby_gauge.set(
                    float(sum(len(v) for v in self._lobbies.values()))
                )
            )

    # ------------------------------------------------------------------
    # Arrival intake
    # ------------------------------------------------------------------

    def feed(self, trace: ArrivalTrace) -> None:
        """Schedule every arrival in ``trace`` onto the simulator."""
        for arrival in trace:
            delay = arrival.t_ms - self.sim.now
            if delay < 0:
                raise ValueError(
                    f"arrival at {arrival.t_ms} ms is in the past "
                    f"(sim now {self.sim.now} ms)"
                )
            self.sim.schedule(
                delay, lambda game=arrival.game: self._arrive(game)
            )

    def waiting(self) -> int:
        """Players currently parked in lobbies (unmatched)."""
        return sum(len(members) for members in self._lobbies.values())

    def _arrive(self, game: str) -> None:
        """One player lands in ``game``'s lobby."""
        self.stats.players_arrived += 1
        lobby = self._lobbies.setdefault(game, [])
        lobby.append(self.sim.now)
        if len(lobby) >= self.config.session_size:
            members = tuple(lobby[: self.config.session_size])
            del lobby[: self.config.session_size]
            self._form(game, members)
        elif self.config.max_wait_ms > 0:
            self.sim.schedule(
                self.config.max_wait_ms, lambda: self._wait_check(game)
            )

    def _wait_check(self, game: str) -> None:
        """Fire a timeout formation if the oldest member waited enough."""
        lobby = self._lobbies.get(game, [])
        if not lobby:
            return
        waited = self.sim.now - lobby[0]
        if waited + 1e-9 < self.config.max_wait_ms:
            return
        if len(lobby) < self.config.min_session_size:
            return
        count = min(len(lobby), self.config.session_size)
        members = tuple(lobby[:count])
        del lobby[:count]
        self._form(game, members)

    # ------------------------------------------------------------------
    # Formation and admission
    # ------------------------------------------------------------------

    def _form(self, game: str, members: Tuple[float, ...]) -> None:
        """A group leaves the lobby and faces admission for the first time."""
        self.stats.sessions_formed += 1
        if self._formed_counter is not None:
            self._formed_counter.inc()
        self._apply(game, members)

    def _apply(self, game: str, members: Tuple[float, ...]) -> None:
        """One admission attempt; retries reschedule themselves."""
        estimate = self.estimate_for(game, len(members))
        decision = self.controller.evaluate(
            list(self.active_estimates()), estimate
        )
        if decision.admitted:
            self.stats.sessions_admitted += 1
            self.stats.players_matched += len(members)
            self.launch(game, members, decision)
            return
        reason = decision.reason
        oldest_wait = self.sim.now - members[0]
        if oldest_wait + self.config.retry_ms <= self.config.patience_ms:
            self.stats.admission_retries += 1
            self.sim.schedule(
                self.config.retry_ms, lambda: self._apply(game, members)
            )
            return
        self.stats.sessions_rejected += 1
        self.stats.players_rejected += len(members)
        self.stats.rejects_by_reason[reason] = (
            self.stats.rejects_by_reason.get(reason, 0) + 1
        )
        if self._rejected_counter is not None:
            self._rejected_counter.inc()
