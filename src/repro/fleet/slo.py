"""Fleet serving objectives with burn-rate alerting.

The session-level stock SLOs (:func:`repro.telemetry.slo.default_slos`)
already include a ``join_latency_p99`` objective over the
``join_latency_ms`` series; the fleet run feeds that exact series (one
gauge sample per admitted player), so the stock objective evaluates
unchanged at fleet scope.  Two fleet-only objectives join it:

* ``farm_wait_p99`` — render requests must clear the farm within the
  prefetch deadline, or sessions stall in warm-up;
* ``session_reject_rate`` — the fraction of formed sessions the fleet
  turns away must stay small; a sustained reject burn is the capacity
  pager signal.

Fleet dynamics are slower than frame dynamics, so the burn-rate rules
use wider windows than :data:`repro.telemetry.slo.DEFAULT_BURN_RULES` —
a flash crowd shows up as a multi-second episode, not a 500 ms blip.
"""

from __future__ import annotations

from typing import Tuple

from ..telemetry.slo import BurnRule, SloSpec, default_slos

#: Fleet-paced multi-window burn rules: a fast pair for flash crowds, a
#: slow pair for sustained capacity exhaustion.
FLEET_BURN_RULES: Tuple[BurnRule, ...] = (
    BurnRule(short_ms=1000.0, long_ms=4000.0, threshold=6.0),
    BurnRule(short_ms=2000.0, long_ms=8000.0, threshold=1.5),
)

#: Histogram bucket edges (ms) for fleet join latency — lobby wait plus
#: admission retries plus warm-up renders, so seconds-scale.
JOIN_BUCKETS_MS: Tuple[float, ...] = (
    50.0, 100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0,
)


def fleet_slos() -> Tuple[SloSpec, ...]:
    """The fleet's objectives: stock join latency plus fleet-only specs."""
    join_spec = next(
        spec for spec in default_slos() if spec.name == "join_latency_p99"
    )
    return (
        join_spec,
        SloSpec(
            name="farm_wait_p99",
            kind="value_max",
            metric="farm_wait_ms",
            bound=250.0,
            window_ms=5000.0,
            percentile=99.0,
            rules=FLEET_BURN_RULES,
        ),
        SloSpec(
            name="session_reject_rate",
            kind="ratio",
            metric="fleet_sessions_rejected_total",
            total="fleet_sessions_formed_total",
            bound=0.05,
            window_ms=10000.0,
            rules=FLEET_BURN_RULES,
        ),
    )
