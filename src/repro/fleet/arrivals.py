"""Seeded player-arrival workloads that drive the fleet simulation.

A fleet run is shaped by *who shows up when*: the matchmaker groups a
stream of :class:`PlayerArrival` records into sessions, so the arrival
process is the fleet's input signal the way a trajectory is a session's.
Three canonical processes cover the serving regimes the scheduler must
survive:

* ``poisson`` — memoryless steady-state joins (launch-day background
  load);
* ``diurnal`` — a sinusoidally modulated Poisson process (the day/night
  wave every live service planning doc draws);
* ``flash`` — steady background plus a dense burst of arrivals inside a
  few seconds (a streamer points their audience at the game).

Every generator is a pure function of its parameters and ``seed``; the
same call produces a bit-identical :class:`ArrivalTrace`, which keeps
fleet runs replayable end to end.  Traces also round-trip through a
one-arrival-per-line text format (``t_ms game``) so CI can commit a
fixed workload and the matchmaker can reject malformed files with
line-numbered errors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple, Union

import numpy as np

#: The named workloads `generate_arrivals` dispatches on.
WORKLOADS: Tuple[str, ...] = ("poisson", "diurnal", "flash")


@dataclass(frozen=True)
class PlayerArrival:
    """One player showing up at the fleet's front door.

    ``t_ms`` is fleet sim time; ``game`` names the title the player wants
    to join (one of :data:`repro.world.ALL_GAMES` in real runs, but the
    trace format does not hard-code the game list so synthetic tests can
    use toy names).
    """

    t_ms: float
    game: str

    def __post_init__(self) -> None:
        """Validate the arrival time and game name."""
        if not math.isfinite(self.t_ms) or self.t_ms < 0:
            raise ValueError(f"t_ms must be finite and >= 0, got {self.t_ms}")
        if not self.game or any(ch.isspace() for ch in self.game):
            raise ValueError(f"game must be a non-empty token, got {self.game!r}")


class ArrivalTrace:
    """An ordered, finite sequence of player arrivals.

    Arrival times must be non-decreasing — the matchmaker consumes the
    trace front to back and schedules one simulator event per arrival.
    """

    def __init__(self, arrivals: Sequence[PlayerArrival]) -> None:
        """Wrap ``arrivals``, validating the non-decreasing time order."""
        items = tuple(arrivals)
        for prev, cur in zip(items, items[1:]):
            if cur.t_ms < prev.t_ms:
                raise ValueError(
                    f"arrivals out of order: {cur.t_ms} ms after {prev.t_ms} ms"
                )
        self.arrivals: Tuple[PlayerArrival, ...] = items

    def __len__(self) -> int:
        """Number of arrivals in the trace."""
        return len(self.arrivals)

    def __iter__(self) -> Iterator[PlayerArrival]:
        """Iterate arrivals in time order."""
        return iter(self.arrivals)

    def __eq__(self, other: object) -> bool:
        """Bit-level equality on the arrival tuple."""
        if not isinstance(other, ArrivalTrace):
            return NotImplemented
        return self.arrivals == other.arrivals

    def __repr__(self) -> str:
        """Compact debugging form with count and horizon."""
        return (f"ArrivalTrace({len(self.arrivals)} arrivals, "
                f"horizon {self.horizon_ms:.0f} ms)")

    @property
    def horizon_ms(self) -> float:
        """Time of the last arrival (0 for an empty trace)."""
        return self.arrivals[-1].t_ms if self.arrivals else 0.0

    def games(self) -> Tuple[str, ...]:
        """The distinct games requested, sorted by name."""
        return tuple(sorted({a.game for a in self.arrivals}))

    # ------------------------------------------------------------------
    # Text round-trip (the CI-committed workload format)
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str, source: str = "<arrivals>") -> "ArrivalTrace":
        """Parse the ``t_ms game`` line format, one arrival per line.

        Blank lines and ``#`` comments are skipped.  Every malformed line
        raises :class:`ValueError` carrying ``source`` and the 1-based
        line number, so a bad committed workload fails CI with a pointer
        to the exact line rather than a stack trace.
        """
        arrivals: List[PlayerArrival] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) != 2:
                raise ValueError(
                    f"{source}:{lineno}: expected 't_ms game', got {raw.strip()!r}"
                )
            try:
                t_ms = float(fields[0])
            except ValueError:
                raise ValueError(
                    f"{source}:{lineno}: arrival time {fields[0]!r} is not a number"
                ) from None
            try:
                arrival = PlayerArrival(t_ms=t_ms, game=fields[1])
            except ValueError as exc:
                raise ValueError(f"{source}:{lineno}: {exc}") from None
            if arrivals and arrival.t_ms < arrivals[-1].t_ms:
                raise ValueError(
                    f"{source}:{lineno}: arrival at {arrival.t_ms:g} ms is "
                    f"before the previous arrival at {arrivals[-1].t_ms:g} ms"
                )
            arrivals.append(arrival)
        return cls(arrivals)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ArrivalTrace":
        """Parse a trace file (see :meth:`parse` for the format)."""
        path = Path(path)
        return cls.parse(path.read_text(encoding="utf-8"), source=str(path))

    def to_text(self) -> str:
        """Serialize back to the line format :meth:`parse` accepts.

        Times use ``repr`` so ``parse(to_text(trace)) == trace`` holds
        bit for bit — float repr is exact under round-trip.
        """
        lines = [f"{a.t_ms!r} {a.game}" for a in self.arrivals]
        return "\n".join(lines) + ("\n" if lines else "")


def _validated(rate_per_s: float, duration_s: float,
               games: Sequence[str]) -> Tuple[str, ...]:
    """Shared argument validation for the generators; returns the games."""
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    games = tuple(games)
    if not games:
        raise ValueError("need at least one game")
    for game in games:
        if not game or any(ch.isspace() for ch in game):
            raise ValueError(f"game must be a non-empty token, got {game!r}")
    return games


def _assign_games(rng: np.random.Generator, count: int,
                  games: Tuple[str, ...]) -> List[str]:
    """Deterministically pick a game per arrival, uniform over ``games``."""
    if len(games) == 1:
        return [games[0]] * count
    picks = rng.integers(0, len(games), size=count)
    return [games[int(i)] for i in picks]


def poisson_arrivals(
    rate_per_s: float,
    duration_s: float,
    seed: int,
    games: Sequence[str] = ("racing",),
) -> ArrivalTrace:
    """Memoryless joins at ``rate_per_s`` over ``duration_s`` seconds."""
    games = _validated(rate_per_s, duration_s, games)
    rng = np.random.default_rng(seed)
    horizon_ms = duration_s * 1000.0
    times: List[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1000.0 / rate_per_s))
        if t > horizon_ms:
            break
        times.append(t)
    assigned = _assign_games(rng, len(times), games)
    return ArrivalTrace(
        [PlayerArrival(t_ms=t, game=g) for t, g in zip(times, assigned)]
    )


def diurnal_arrivals(
    peak_rate_per_s: float,
    duration_s: float,
    seed: int,
    games: Sequence[str] = ("racing",),
    floor: float = 0.2,
    waves: float = 1.0,
) -> ArrivalTrace:
    """A sinusoidal day/night wave peaking at ``peak_rate_per_s``.

    Implemented by thinning a homogeneous Poisson process at the peak
    rate: a candidate at time ``t`` survives with probability
    ``floor + (1 - floor) * (1 - cos(2*pi*waves*t/T)) / 2`` — the trough
    keeps ``floor`` of the peak load, and ``waves`` full cycles fit the
    horizon.  Thinning keeps the process exactly Poisson with the target
    intensity while staying a pure function of ``seed``.
    """
    games = _validated(peak_rate_per_s, duration_s, games)
    if not 0 < floor <= 1.0:
        raise ValueError("floor must be in (0, 1]")
    if waves <= 0:
        raise ValueError("waves must be positive")
    rng = np.random.default_rng(seed)
    horizon_ms = duration_s * 1000.0
    times: List[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1000.0 / peak_rate_per_s))
        if t > horizon_ms:
            break
        phase = 2.0 * math.pi * waves * t / horizon_ms
        envelope = floor + (1.0 - floor) * 0.5 * (1.0 - math.cos(phase))
        if float(rng.random()) < envelope:
            times.append(t)
    assigned = _assign_games(rng, len(times), games)
    return ArrivalTrace(
        [PlayerArrival(t_ms=t, game=g) for t, g in zip(times, assigned)]
    )


def flash_crowd_arrivals(
    base_rate_per_s: float,
    duration_s: float,
    seed: int,
    games: Sequence[str] = ("racing",),
    surge_players: int = 32,
    surge_at_frac: float = 0.4,
    surge_width_s: float = 2.0,
) -> ArrivalTrace:
    """Steady background joins plus a dense surge partway through.

    ``surge_players`` extra arrivals land uniformly inside a
    ``surge_width_s`` window starting at ``surge_at_frac`` of the
    horizon — the canonical "streamer effect" burst the matchmaker and
    render farm must absorb without starving the background sessions.
    """
    games = _validated(base_rate_per_s, duration_s, games)
    if surge_players < 1:
        raise ValueError("surge_players must be >= 1")
    if not 0 <= surge_at_frac < 1.0:
        raise ValueError("surge_at_frac must be in [0, 1)")
    if surge_width_s <= 0:
        raise ValueError("surge_width_s must be positive")
    rng = np.random.default_rng(seed)
    horizon_ms = duration_s * 1000.0
    base: List[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1000.0 / base_rate_per_s))
        if t > horizon_ms:
            break
        base.append(t)
    surge_start = surge_at_frac * horizon_ms
    surge_end = min(horizon_ms, surge_start + surge_width_s * 1000.0)
    surge = sorted(
        float(rng.uniform(surge_start, surge_end)) for _ in range(surge_players)
    )
    times = sorted(base + surge)
    assigned = _assign_games(rng, len(times), games)
    return ArrivalTrace(
        [PlayerArrival(t_ms=t, game=g) for t, g in zip(times, assigned)]
    )


def generate_arrivals(
    workload: str,
    rate_per_s: float,
    duration_s: float,
    seed: int,
    games: Sequence[str] = ("racing",),
) -> ArrivalTrace:
    """Dispatch on a :data:`WORKLOADS` name with that workload's defaults.

    ``rate_per_s`` is the Poisson rate, the diurnal *peak* rate, or the
    flash-crowd *background* rate respectively.
    """
    if workload == "poisson":
        return poisson_arrivals(rate_per_s, duration_s, seed, games)
    if workload == "diurnal":
        return diurnal_arrivals(rate_per_s, duration_s, seed, games)
    if workload == "flash":
        return flash_crowd_arrivals(rate_per_s, duration_s, seed, games)
    raise ValueError(f"unknown workload {workload!r}; known: {WORKLOADS}")
