"""Per-session render-demand derivation from real movement traces.

The fleet model does not re-run the full per-frame client pipeline for
every admitted session — that is what ``fidelity="full"`` replays are
for.  Instead each session's server-side load is derived from the same
trajectory generator the single-session engine uses
(:func:`repro.trace.generate_party`): walk the party's movement at a
fixed stride, quantize every position to a *demand cell*, and keep the
first visit to each cell.  The result is the ordered stream of demand
points the session's far-BE prefetchers would fetch from the server —
which, on a client cache miss, is precisely one panorama render.

Demand cells are deliberately coarser than the 1/32 m world grid: the
client does not fetch a fresh panorama every 3 cm, it fetches one per
*dist-thresh* of movement (several metres — that is Coterie's whole
point).  ``spacing_m`` models that fetch granularity, so the demand
rate lands at the few-per-second scale Table 9 implies and two sessions
driving the same track hit the same cells.

Because trajectories are pure functions of (world, players, duration,
seed), a session's demand — and therefore every fleet-level quantity
derived from it — is deterministic, and sessions of the same game with
different seeds overlap heavily in space (the paper's §4.1 observation
that multiplayer groups travel together), which is exactly the overlap
the cross-session shared store converts into dedup hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

import math

from ..geometry import GridPoint
from ..net.pun import PunConfig
from ..trace import generate_party
from ..world import GameWorld
from .admission import SessionEstimate

#: Default demand-cell edge in metres — the dist-thresh-scale spacing at
#: which a moving player needs a fresh far-BE panorama (paper §4.3 finds
#: thresholds of metres, not centimetres).
DEFAULT_SPACING_M = 2.0

#: Mean far-BE panorama size per game, in kilobytes (paper Table 8 for
#: the headline games; the study-wide median for the rest).  The fleet
#: model only needs a bandwidth-scale constant — full-fidelity replays
#: measure the real per-frame sizes.
FRAME_KB: Dict[str, float] = {
    "viking": 280.0,
    "cts": 150.0,
    "racing": 194.0,
}
DEFAULT_FRAME_KB = 200.0


@dataclass(frozen=True)
class DemandPoint:
    """One first-visit grid point: when (session-relative) and where."""

    t_offset_ms: float
    grid_point: GridPoint


@dataclass(frozen=True)
class SessionDemand:
    """A session's ordered unique demand stream plus load estimates."""

    game: str
    players: int
    duration_ms: float
    points: Tuple[DemandPoint, ...]

    @property
    def renders_per_s(self) -> float:
        """Raw (pre-dedup) demand-point rate over the session."""
        if self.duration_ms <= 0:
            return 0.0
        return len(self.points) / (self.duration_ms / 1000.0)

    def estimate(self) -> SessionEstimate:
        """The admission-control forecast this demand implies.

        BE bandwidth charges each player their share of the session's
        unique-point fetch rate at the game's mean far-frame size; FI is
        the same closed-form PUN sync fanout the per-session admission
        controller forecasts with (§4.2's ``n^2`` state exchange).
        """
        per_player_rate = self.renders_per_s / self.players
        frame_kb = FRAME_KB.get(self.game, DEFAULT_FRAME_KB)
        be_kbps = per_player_rate * frame_kb * 8.0
        return SessionEstimate(
            players=self.players,
            renders_per_s=self.renders_per_s,
            be_kbps_per_player=be_kbps,
            fi_kbps=fi_sync_kbps(self.players),
        )


def fi_sync_kbps(n_players: int, config: PunConfig = PunConfig()) -> float:
    """Closed-form FI sync bandwidth for an ``n_players`` roster.

    Mirrors :meth:`repro.net.pun.PunChannel.expected_bandwidth_kbps`
    without needing a live channel: heartbeats only for a lone player,
    ``n`` uploads plus ``n*(n-1)`` fanout downloads per tick otherwise.
    """
    if n_players <= 0:
        return 0.0
    if n_players == 1:
        return config.heartbeat_bytes * 8 * config.heartbeat_hz / 1000.0
    per_tick = (
        n_players * config.state_bytes
        + n_players * (n_players - 1) * config.state_bytes
    )
    return per_tick * 8 * config.send_rate_hz / 1000.0


def demand_cell(x: float, y: float, spacing_m: float) -> GridPoint:
    """Quantize a world position to its dist-thresh-scale demand cell."""
    return (int(math.floor(x / spacing_m)), int(math.floor(y / spacing_m)))


def session_demand(
    world: GameWorld,
    players: int,
    duration_s: float,
    seed: int,
    stride_ms: float = 50.0,
    spacing_m: float = DEFAULT_SPACING_M,
) -> SessionDemand:
    """Derive one session's demand stream from its party trajectories.

    Samples every trajectory at ``stride_ms`` (a 20 Hz prefetch planning
    cadence by default — at VR movement speeds no demand cell is skipped
    between samples), quantizes to ``spacing_m`` demand cells, and emits
    each cell at its earliest visit time across the whole party — later
    visits are the session's own client-cache hits and never reach the
    server.
    """
    if players < 1:
        raise ValueError("players must be >= 1")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if stride_ms <= 0:
        raise ValueError("stride_ms must be positive")
    if spacing_m <= 0:
        raise ValueError("spacing_m must be positive")
    party = generate_party(world, players, duration_s, seed=seed)
    first_visit: Dict[GridPoint, float] = {}
    for trajectory in party:
        next_t = 0.0
        for sample in trajectory:
            if sample.t_ms + 1e-9 < next_t:
                continue
            next_t = sample.t_ms + stride_ms
            cell = demand_cell(sample.position.x, sample.position.y, spacing_m)
            earlier = first_visit.get(cell)
            if earlier is None or sample.t_ms < earlier:
                first_visit[cell] = sample.t_ms
    ordered: List[DemandPoint] = [
        DemandPoint(t_offset_ms=t, grid_point=gp)
        for gp, t in first_visit.items()
    ]
    ordered.sort(key=lambda p: (p.t_offset_ms, p.grid_point))
    return SessionDemand(
        game=world.name,
        players=players,
        duration_ms=duration_s * 1000.0,
        points=tuple(ordered),
    )


@lru_cache(maxsize=512)
def _cached_demand(
    game: str, players: int, duration_s: float, seed: int,
    stride_ms: float, spacing_m: float,
) -> SessionDemand:
    """Memoized :func:`session_demand` keyed by its scalar arguments."""
    from ..world import load_game

    return session_demand(
        load_game(game), players, duration_s, seed,
        stride_ms=stride_ms, spacing_m=spacing_m,
    )


def demand_for(
    game: str, players: int, duration_s: float, seed: int,
    stride_ms: float = 50.0, spacing_m: float = DEFAULT_SPACING_M,
) -> SessionDemand:
    """Cached demand lookup by game name (worlds are memoized too).

    Fleet runs evaluate the same prospective session repeatedly (every
    admission retry re-estimates it), so the memoization keeps demand
    derivation off the simulation's critical path.
    """
    return _cached_demand(game, players, float(duration_s), int(seed),
                          float(stride_ms), float(spacing_m))
