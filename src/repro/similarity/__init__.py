"""Frame-similarity metrics (SSIM and the paper's locality statistics)."""

from .metrics import (
    adjacent_similarities,
    best_case_similarities,
    fraction_above,
    similarity_cdf,
)
from .ssim import SSIM_GOOD, is_similar, ssim, ssim_map

__all__ = [
    "SSIM_GOOD",
    "adjacent_similarities",
    "best_case_similarities",
    "fraction_above",
    "is_similar",
    "similarity_cdf",
    "ssim",
    "ssim_map",
]
