"""Frame-similarity metrics (SSIM and the paper's locality statistics)."""

from .metrics import (
    adjacent_similarities,
    best_case_similarities,
    fraction_above,
    similarity_cdf,
)
from .ssim import (
    SSIM_GOOD,
    CandidateMoments,
    SsimReference,
    is_similar,
    prepare_reference,
    ssim,
    ssim_many,
    ssim_many_stacked,
    ssim_map,
    ssim_map_update,
    ssim_map_with,
    ssim_pairs,
    ssim_with,
    ssim_with_update,
)

__all__ = [
    "SSIM_GOOD",
    "CandidateMoments",
    "SsimReference",
    "adjacent_similarities",
    "best_case_similarities",
    "fraction_above",
    "is_similar",
    "prepare_reference",
    "similarity_cdf",
    "ssim",
    "ssim_many",
    "ssim_many_stacked",
    "ssim_map",
    "ssim_map_update",
    "ssim_map_with",
    "ssim_pairs",
    "ssim_with",
    "ssim_with_update",
]
