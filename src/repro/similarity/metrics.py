"""Frame-sequence similarity metrics for the paper's similarity studies.

§4.1 defines two localities: *intra-player* similarity between each BE
frame and the next one along a player's trajectory (Fig. 1), and
*inter-player best-case* similarity — for each of Player 1's frames, the
maximum SSIM over all of Player 2's frames (Fig. 2).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .ssim import SSIM_GOOD, ssim


def adjacent_similarities(frames: Sequence[np.ndarray]) -> List[float]:
    """SSIM between each frame and its successor (intra-player locality)."""
    if len(frames) < 2:
        raise ValueError("need at least 2 frames")
    return [ssim(frames[i], frames[i + 1]) for i in range(len(frames) - 1)]


def best_case_similarities(
    frames_a: Sequence[np.ndarray],
    frames_b: Sequence[np.ndarray],
    stride: int = 1,
) -> List[float]:
    """For each frame of player A, the max SSIM over player B's frames.

    The paper calls this *best-case* inter-player similarity because it
    assumes a perfect oracle picks the most similar candidate.  ``stride``
    subsamples B's frames to bound the O(|A| x |B|) SSIM cost.
    """
    if not frames_a or not frames_b:
        raise ValueError("both frame sequences must be non-empty")
    if stride < 1:
        raise ValueError("stride must be >= 1")
    candidates = frames_b[::stride]
    return [
        max(ssim(frame, other) for other in candidates) for frame in frames_a
    ]


def fraction_above(values: Sequence[float], threshold: float = SSIM_GOOD) -> float:
    """Fraction of similarity values above the quality threshold.

    This is the paper's headline statistic: "the percentage of BE frames
    that exhibit an SSIM value larger than 0.90".
    """
    if not values:
        raise ValueError("values must be non-empty")
    return sum(1 for v in values if v > threshold) / len(values)


def similarity_cdf(values: Sequence[float], points: int = 101) -> np.ndarray:
    """(x, F(x)) pairs for plotting a similarity CDF (Figs. 1, 2, 7).

    Returns an array of shape (points, 2) with x spanning [0, 1].
    """
    if not values:
        raise ValueError("values must be non-empty")
    if points < 2:
        raise ValueError("points must be >= 2")
    xs = np.linspace(0.0, 1.0, points)
    sorted_vals = np.sort(np.asarray(values, dtype=np.float64))
    fractions = np.searchsorted(sorted_vals, xs, side="right") / len(sorted_vals)
    return np.column_stack([xs, fractions])
