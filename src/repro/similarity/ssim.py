"""Structural Similarity (SSIM), Wang et al. 2004.

The paper uses SSIM as the *de facto* frame-similarity metric, with 0.90 as
the "good visual quality" threshold (from Kahawai's human-subject study).
Everything that decides whether a cached far-BE frame may be reused — the
dist_thresh binary search, the similarity CDFs of Figs. 1/2/5 — runs
through this implementation.

Standard formulation: luminance/contrast/structure comparisons over a
gaussian-weighted sliding window (sigma 1.5, 11x11 support), stabilised by
C1 = (K1 L)^2 and C2 = (K2 L)^2 with K1=0.01, K2=0.03.

The hot comparison pattern in this codebase is one-vs-many: the dist-thresh
binary search scores a fixed reference frame against a sequence of
displaced candidates.  Five gaussian filters per pair — blur(x), blur(y),
blur(x²), blur(y²), blur(xy) — means two of them (the reference's moments)
are recomputed identically on every probe.  :class:`SsimReference`
precomputes those moments once; :func:`ssim_with` and :func:`ssim_many`
then cost three filters per candidate instead of five, with results
bit-identical to the pairwise :func:`ssim` (same operations on the same
floats, just cached).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import gaussian_filter

from .. import perf

# The reuse threshold from the paper (SSIM > 0.90 => "good" visual quality).
SSIM_GOOD = 0.90

_K1 = 0.01
_K2 = 0.03
_SIGMA = 1.5
# 11-tap support like the reference implementation: truncate at 5 sigma-units.
_TRUNCATE = 5.0 / _SIGMA
# scipy's gaussian kernel radius for (sigma, truncate): int(truncate*sigma+0.5).
_RADIUS = int(_TRUNCATE * _SIGMA + 0.5)


def _validate_frame(a: np.ndarray) -> None:
    if a.ndim != 2:
        raise ValueError("SSIM operates on 2D luminance frames")
    if a.shape[0] < 4 or a.shape[1] < 4:
        raise ValueError("frames too small for windowed SSIM")


def _validate_pair(a: np.ndarray, b: np.ndarray) -> None:
    _validate_frame(a)
    _validate_frame(b)
    if a.shape != b.shape:
        raise ValueError(f"frame shapes differ: {a.shape} vs {b.shape}")


def _blur(img: np.ndarray) -> np.ndarray:
    return gaussian_filter(img, sigma=_SIGMA, truncate=_TRUNCATE)


@dataclass(frozen=True)
class SsimReference:
    """Precomputed gaussian moments of one frame (the comparison anchor)."""

    image: np.ndarray  # float64 copy of the reference
    mu: np.ndarray
    mu_sq: np.ndarray
    sigma_sq: np.ndarray
    data_range: float
    c1: float
    c2: float

    @property
    def shape(self):
        return self.image.shape


def prepare_reference(a: np.ndarray, data_range: float = 1.0) -> SsimReference:
    """Compute the reference-side moments shared by every comparison."""
    _validate_frame(a)
    if data_range <= 0:
        raise ValueError("data_range must be positive")
    x = a.astype(np.float64)
    mu_x = _blur(x)
    mu_x_sq = mu_x * mu_x
    sigma_x_sq = _blur(x * x) - mu_x_sq
    return SsimReference(
        image=x,
        mu=mu_x,
        mu_sq=mu_x_sq,
        sigma_sq=sigma_x_sq,
        data_range=data_range,
        c1=(_K1 * data_range) ** 2,
        c2=(_K2 * data_range) ** 2,
    )


def ssim_map_with(ref: SsimReference, b: np.ndarray) -> np.ndarray:
    """Per-pixel SSIM map of a candidate against a prepared reference."""
    _validate_frame(b)
    if b.shape != ref.shape:
        raise ValueError(f"frame shapes differ: {ref.shape} vs {b.shape}")
    with perf.timed("ssim"):
        y = b.astype(np.float64)
        mu_y = _blur(y)
        mu_y_sq = mu_y * mu_y
        mu_xy = ref.mu * mu_y
        sigma_y_sq = _blur(y * y) - mu_y_sq
        sigma_xy = _blur(ref.image * y) - mu_xy

        numerator = (2.0 * mu_xy + ref.c1) * (2.0 * sigma_xy + ref.c2)
        denominator = (ref.mu_sq + mu_y_sq + ref.c1) * (
            ref.sigma_sq + sigma_y_sq + ref.c2
        )
        return numerator / denominator


def ssim_with(ref: SsimReference, b: np.ndarray) -> float:
    """Mean SSIM of a candidate against a prepared reference."""
    return float(ssim_map_with(ref, b).mean())


@dataclass(frozen=True)
class CandidateMoments:
    """Cached candidate-side gaussian moments for dirty-row SSIM reuse.

    Holds the three blurred maps :func:`ssim_map_with` computes per
    candidate — ``blur(y)``, ``blur(y*y)``, ``blur(x*y)`` — so the next
    candidate in a probe sequence can refresh only the rows its dirty-block
    map touches.  ``xy`` is tied to the reference the moments were built
    against; reuse across references would be wrong, so callers keep one
    cache per :class:`SsimReference`.
    """

    image: np.ndarray  # float64 copy of the candidate
    mu: np.ndarray  # blur(y)
    yy: np.ndarray  # blur(y * y)
    xy: np.ndarray  # blur(ref.image * y)


def _dirty_output_bands(dirty_rows: np.ndarray):
    """Merged ``[lo, hi)`` bands of blur outputs affected by dirty rows.

    A blurred pixel depends on input rows within :data:`_RADIUS`, so each
    dirty input row invalidates a ``2 * _RADIUS + 1`` output band; adjacent
    bands merge.
    """
    h = dirty_rows.size
    kernel = np.ones(2 * _RADIUS + 1, dtype=np.int32)
    dilated = np.convolve(dirty_rows.astype(np.int32), kernel)[_RADIUS : _RADIUS + h] > 0
    edges = np.flatnonzero(
        np.diff(np.concatenate(([0], dilated.astype(np.int8), [0])))
    )
    return list(zip(edges[::2].tolist(), edges[1::2].tolist()))


def ssim_map_update(
    ref: SsimReference,
    b: np.ndarray,
    prev: "CandidateMoments | None" = None,
    dirty_rows: "np.ndarray | None" = None,
):
    """SSIM map plus reusable moments, refreshing only dirty rows.

    Drop-in equivalent of :func:`ssim_map_with` for one-vs-many probe
    sequences whose candidates change incrementally (the dist-thresh
    binary search: sky rows are identical between displaced far-BE
    renders).  ``dirty_rows`` is a per-pixel-row bool mask derived from
    the codec's dirty-block map
    (:func:`repro.codec.dirty.dirty_row_mask`): rows marked clean must be
    bit-identical between ``prev.image`` and ``b``.  Gaussian moments are
    recomputed only inside the dirty bands (padded by the blur radius so
    every refreshed output sees exactly the taps a full-frame filter
    would), and spliced into ``prev``'s maps — the returned map is
    bit-identical to :func:`ssim_map_with`.

    Returns ``(ssim_map, moments)``; pass ``moments`` back as ``prev`` for
    the next candidate.  With ``prev=None`` or ``dirty_rows=None`` the
    full computation runs (and still returns cacheable moments).
    Row-level reuse is counted in :mod:`repro.perf` as
    ``ssim.rows_total`` / ``ssim.rows_reused``.
    """
    _validate_frame(b)
    if b.shape != ref.shape:
        raise ValueError(f"frame shapes differ: {ref.shape} vs {b.shape}")
    with perf.timed("ssim"):
        y = b.astype(np.float64)
        h = y.shape[0]
        dirty = None
        if prev is not None and dirty_rows is not None and prev.image.shape == y.shape:
            dirty = np.asarray(dirty_rows, dtype=bool)
            if dirty.shape != (h,):
                raise ValueError(
                    f"dirty_rows must have shape ({h},), got {dirty.shape}"
                )
        perf.count("ssim.rows_total", h)
        if dirty is None or dirty.all():
            mu_y = _blur(y)
            yy = _blur(y * y)
            xy = _blur(ref.image * y)
        else:
            mu_y = prev.mu.copy()
            yy = prev.yy.copy()
            xy = prev.xy.copy()
            refreshed = 0
            for lo, hi in _dirty_output_bands(dirty):
                # Inputs pad the output band by one more radius; where the
                # pad clips at a frame edge, scipy's reflection there is
                # the true full-frame boundary behaviour.
                in_lo, in_hi = max(0, lo - _RADIUS), min(h, hi + _RADIUS)
                ys = y[in_lo:in_hi]
                xs = ref.image[in_lo:in_hi]
                out = slice(lo - in_lo, hi - in_lo)
                mu_y[lo:hi] = _blur(ys)[out]
                yy[lo:hi] = _blur(ys * ys)[out]
                xy[lo:hi] = _blur(xs * ys)[out]
                refreshed += hi - lo
            perf.count("ssim.rows_reused", h - refreshed)

        mu_y_sq = mu_y * mu_y
        mu_xy = ref.mu * mu_y
        sigma_y_sq = yy - mu_y_sq
        sigma_xy = xy - mu_xy
        numerator = (2.0 * mu_xy + ref.c1) * (2.0 * sigma_xy + ref.c2)
        denominator = (ref.mu_sq + mu_y_sq + ref.c1) * (
            ref.sigma_sq + sigma_y_sq + ref.c2
        )
        moments = CandidateMoments(image=y, mu=mu_y, yy=yy, xy=xy)
        return numerator / denominator, moments


def ssim_with_update(
    ref: SsimReference,
    b: np.ndarray,
    prev: "CandidateMoments | None" = None,
    dirty_rows: "np.ndarray | None" = None,
):
    """Mean-SSIM variant of :func:`ssim_map_update`.

    Returns ``(score, moments)``; the score is bit-identical to
    :func:`ssim_with`.
    """
    ssim_map, moments = ssim_map_update(ref, b, prev=prev, dirty_rows=dirty_rows)
    return float(ssim_map.mean()), moments


def ssim_many(
    a: np.ndarray, candidates, data_range: float = 1.0
) -> np.ndarray:
    """Mean SSIM of ``a`` against each candidate, sharing ``a``'s moments.

    Equivalent to ``[ssim(a, c) for c in candidates]`` but computes the
    reference's gaussian moments once instead of once per pair; the values
    are bit-identical to the pairwise calls.
    """
    ref = prepare_reference(a, data_range)
    return np.array([ssim_with(ref, c) for c in candidates], dtype=np.float64)


def ssim_map(
    a: np.ndarray, b: np.ndarray, data_range: float = 1.0
) -> np.ndarray:
    """Per-pixel SSIM index map between two luminance frames."""
    _validate_pair(a, b)
    return ssim_map_with(prepare_reference(a, data_range), b)


def ssim(a: np.ndarray, b: np.ndarray, data_range: float = 1.0) -> float:
    """Mean SSIM between two luminance frames (1.0 = identical)."""
    return float(ssim_map(a, b, data_range).mean())


def is_similar(
    a: np.ndarray, b: np.ndarray, threshold: float = SSIM_GOOD
) -> bool:
    """Whether two frames pass the paper's reuse-quality bar."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    return ssim(a, b) > threshold
