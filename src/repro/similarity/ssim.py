"""Structural Similarity (SSIM), Wang et al. 2004.

The paper uses SSIM as the *de facto* frame-similarity metric, with 0.90 as
the "good visual quality" threshold (from Kahawai's human-subject study).
Everything that decides whether a cached far-BE frame may be reused — the
dist_thresh binary search, the similarity CDFs of Figs. 1/2/5 — runs
through this implementation.

Standard formulation: luminance/contrast/structure comparisons over a
gaussian-weighted sliding window (sigma 1.5, 11x11 support), stabilised by
C1 = (K1 L)^2 and C2 = (K2 L)^2 with K1=0.01, K2=0.03.

The hot comparison pattern in this codebase is one-vs-many: the dist-thresh
binary search scores a fixed reference frame against a sequence of
displaced candidates.  Five gaussian filters per pair — blur(x), blur(y),
blur(x²), blur(y²), blur(xy) — means two of them (the reference's moments)
are recomputed identically on every probe.  :class:`SsimReference`
precomputes those moments once; :func:`ssim_with` and :func:`ssim_many`
then cost three filters per candidate instead of five, with results
bit-identical to the pairwise :func:`ssim` (same operations on the same
floats, just cached).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.ndimage import correlate1d

from .. import perf

# The reuse threshold from the paper (SSIM > 0.90 => "good" visual quality).
SSIM_GOOD = 0.90

_K1 = 0.01
_K2 = 0.03
_SIGMA = 1.5
# 11-tap support like the reference implementation: truncate at 5 sigma-units.
_TRUNCATE = 5.0 / _SIGMA
# scipy's gaussian kernel radius for (sigma, truncate): int(truncate*sigma+0.5).
_RADIUS = int(_TRUNCATE * _SIGMA + 0.5)


def _gaussian_window() -> np.ndarray:
    """The 1D correlation window ``gaussian_filter`` would build per call.

    Same construction as scipy's ``_gaussian_kernel1d`` (normalised
    gaussian over ``[-radius, radius]``) applied reversed, as
    ``gaussian_filter1d`` passes it to ``correlate1d`` — so blurring with
    this window is bit-identical to the ``gaussian_filter`` call it
    replaces.
    """
    x = np.arange(-_RADIUS, _RADIUS + 1, dtype=np.float64)
    phi = np.exp((-0.5 / (_SIGMA * _SIGMA)) * (x * x))
    phi /= phi.sum()
    window = phi[::-1].copy()
    window.setflags(write=False)
    return window


# Hoisted out of the per-call path: every SSIM evaluation used to rebuild
# this window (and the C1/C2 stabilisers) inside gaussian_filter; the
# scalar oracle path now shares the same precomputed tables.
_WINDOW = _gaussian_window()


@lru_cache(maxsize=32)
def _stab_constants(data_range: float):
    """(C1, C2) stabilisers for a data range, computed once per range."""
    return (_K1 * data_range) ** 2, (_K2 * data_range) ** 2


def _validate_frame(a: np.ndarray) -> None:
    if a.ndim != 2:
        raise ValueError("SSIM operates on 2D luminance frames")
    if a.shape[0] < 4 or a.shape[1] < 4:
        raise ValueError("frames too small for windowed SSIM")


def _validate_pair(a: np.ndarray, b: np.ndarray) -> None:
    _validate_frame(a)
    _validate_frame(b)
    if a.shape != b.shape:
        raise ValueError(f"frame shapes differ: {a.shape} vs {b.shape}")


def _blur(img: np.ndarray, out=None, scratch=None) -> np.ndarray:
    """Separable gaussian blur over the last two axes.

    Bit-identical to ``gaussian_filter(img, sigma=_SIGMA,
    truncate=_TRUNCATE)`` on a 2D frame, and — because the correlation
    never mixes values across leading axes — to blurring each frame of an
    ``(N, H, W)`` stack independently.  ``out``/``scratch`` take
    preallocated float64 buffers of ``img``'s shape (arena-backed
    zero-allocation use); they must not alias ``img``.
    """
    tmp = correlate1d(img, _WINDOW, axis=-2, mode="reflect", output=scratch)
    return correlate1d(tmp, _WINDOW, axis=-1, mode="reflect", output=out)


@dataclass(frozen=True)
class SsimReference:
    """Precomputed gaussian moments of one frame (the comparison anchor)."""

    image: np.ndarray  # float64 copy of the reference
    mu: np.ndarray
    mu_sq: np.ndarray
    sigma_sq: np.ndarray
    data_range: float
    c1: float
    c2: float

    @property
    def shape(self):
        return self.image.shape


def prepare_reference(a: np.ndarray, data_range: float = 1.0) -> SsimReference:
    """Compute the reference-side moments shared by every comparison."""
    _validate_frame(a)
    if data_range <= 0:
        raise ValueError("data_range must be positive")
    x = a.astype(np.float64)
    mu_x = _blur(x)
    mu_x_sq = mu_x * mu_x
    sigma_x_sq = _blur(x * x) - mu_x_sq
    c1, c2 = _stab_constants(data_range)
    return SsimReference(
        image=x,
        mu=mu_x,
        mu_sq=mu_x_sq,
        sigma_sq=sigma_x_sq,
        data_range=data_range,
        c1=c1,
        c2=c2,
    )


def ssim_map_with(ref: SsimReference, b: np.ndarray) -> np.ndarray:
    """Per-pixel SSIM map of a candidate against a prepared reference."""
    _validate_frame(b)
    if b.shape != ref.shape:
        raise ValueError(f"frame shapes differ: {ref.shape} vs {b.shape}")
    with perf.timed("ssim"):
        y = b.astype(np.float64)
        mu_y = _blur(y)
        mu_y_sq = mu_y * mu_y
        mu_xy = ref.mu * mu_y
        sigma_y_sq = _blur(y * y) - mu_y_sq
        sigma_xy = _blur(ref.image * y) - mu_xy

        numerator = (2.0 * mu_xy + ref.c1) * (2.0 * sigma_xy + ref.c2)
        denominator = (ref.mu_sq + mu_y_sq + ref.c1) * (
            ref.sigma_sq + sigma_y_sq + ref.c2
        )
        return numerator / denominator


def ssim_with(ref: SsimReference, b: np.ndarray) -> float:
    """Mean SSIM of a candidate against a prepared reference."""
    return float(ssim_map_with(ref, b).mean())


@dataclass(frozen=True)
class CandidateMoments:
    """Cached candidate-side gaussian moments for dirty-row SSIM reuse.

    Holds the three blurred maps :func:`ssim_map_with` computes per
    candidate — ``blur(y)``, ``blur(y*y)``, ``blur(x*y)`` — so the next
    candidate in a probe sequence can refresh only the rows its dirty-block
    map touches.  ``xy`` is tied to the reference the moments were built
    against; reuse across references would be wrong, so callers keep one
    cache per :class:`SsimReference`.
    """

    image: np.ndarray  # float64 copy of the candidate
    mu: np.ndarray  # blur(y)
    yy: np.ndarray  # blur(y * y)
    xy: np.ndarray  # blur(ref.image * y)


def _dirty_output_bands(dirty_rows: np.ndarray):
    """Merged ``[lo, hi)`` bands of blur outputs affected by dirty rows.

    A blurred pixel depends on input rows within :data:`_RADIUS`, so each
    dirty input row invalidates a ``2 * _RADIUS + 1`` output band; adjacent
    bands merge.
    """
    h = dirty_rows.size
    kernel = np.ones(2 * _RADIUS + 1, dtype=np.int32)
    dilated = np.convolve(dirty_rows.astype(np.int32), kernel)[_RADIUS : _RADIUS + h] > 0
    edges = np.flatnonzero(
        np.diff(np.concatenate(([0], dilated.astype(np.int8), [0])))
    )
    return list(zip(edges[::2].tolist(), edges[1::2].tolist()))


def ssim_map_update(
    ref: SsimReference,
    b: np.ndarray,
    prev: "CandidateMoments | None" = None,
    dirty_rows: "np.ndarray | None" = None,
):
    """SSIM map plus reusable moments, refreshing only dirty rows.

    Drop-in equivalent of :func:`ssim_map_with` for one-vs-many probe
    sequences whose candidates change incrementally (the dist-thresh
    binary search: sky rows are identical between displaced far-BE
    renders).  ``dirty_rows`` is a per-pixel-row bool mask derived from
    the codec's dirty-block map
    (:func:`repro.codec.dirty.dirty_row_mask`): rows marked clean must be
    bit-identical between ``prev.image`` and ``b``.  Gaussian moments are
    recomputed only inside the dirty bands (padded by the blur radius so
    every refreshed output sees exactly the taps a full-frame filter
    would), and spliced into ``prev``'s maps — the returned map is
    bit-identical to :func:`ssim_map_with`.

    Returns ``(ssim_map, moments)``; pass ``moments`` back as ``prev`` for
    the next candidate.  With ``prev=None`` or ``dirty_rows=None`` the
    full computation runs (and still returns cacheable moments).
    Row-level reuse is counted in :mod:`repro.perf` as
    ``ssim.rows_total`` / ``ssim.rows_reused``.
    """
    _validate_frame(b)
    if b.shape != ref.shape:
        raise ValueError(f"frame shapes differ: {ref.shape} vs {b.shape}")
    with perf.timed("ssim"):
        y = b.astype(np.float64)
        h = y.shape[0]
        dirty = None
        if prev is not None and dirty_rows is not None and prev.image.shape == y.shape:
            dirty = np.asarray(dirty_rows, dtype=bool)
            if dirty.shape != (h,):
                raise ValueError(
                    f"dirty_rows must have shape ({h},), got {dirty.shape}"
                )
        perf.count("ssim.rows_total", h)
        if dirty is None or dirty.all():
            mu_y = _blur(y)
            yy = _blur(y * y)
            xy = _blur(ref.image * y)
        else:
            mu_y = prev.mu.copy()
            yy = prev.yy.copy()
            xy = prev.xy.copy()
            refreshed = 0
            for lo, hi in _dirty_output_bands(dirty):
                # Inputs pad the output band by one more radius; where the
                # pad clips at a frame edge, scipy's reflection there is
                # the true full-frame boundary behaviour.
                in_lo, in_hi = max(0, lo - _RADIUS), min(h, hi + _RADIUS)
                ys = y[in_lo:in_hi]
                xs = ref.image[in_lo:in_hi]
                out = slice(lo - in_lo, hi - in_lo)
                mu_y[lo:hi] = _blur(ys)[out]
                yy[lo:hi] = _blur(ys * ys)[out]
                xy[lo:hi] = _blur(xs * ys)[out]
                refreshed += hi - lo
            perf.count("ssim.rows_reused", h - refreshed)

        mu_y_sq = mu_y * mu_y
        mu_xy = ref.mu * mu_y
        sigma_y_sq = yy - mu_y_sq
        sigma_xy = xy - mu_xy
        numerator = (2.0 * mu_xy + ref.c1) * (2.0 * sigma_xy + ref.c2)
        denominator = (ref.mu_sq + mu_y_sq + ref.c1) * (
            ref.sigma_sq + sigma_y_sq + ref.c2
        )
        moments = CandidateMoments(image=y, mu=mu_y, yy=yy, xy=xy)
        return numerator / denominator, moments


def ssim_with_update(
    ref: SsimReference,
    b: np.ndarray,
    prev: "CandidateMoments | None" = None,
    dirty_rows: "np.ndarray | None" = None,
):
    """Mean-SSIM variant of :func:`ssim_map_update`.

    Returns ``(score, moments)``; the score is bit-identical to
    :func:`ssim_with`.
    """
    ssim_map, moments = ssim_map_update(ref, b, prev=prev, dirty_rows=dirty_rows)
    return float(ssim_map.mean()), moments


def ssim_many(
    a: np.ndarray, candidates, data_range: float = 1.0
) -> np.ndarray:
    """Mean SSIM of ``a`` against each candidate, sharing ``a``'s moments.

    Equivalent to ``[ssim(a, c) for c in candidates]`` but computes the
    reference's gaussian moments once instead of once per pair; the values
    are bit-identical to the pairwise calls.
    """
    ref = prepare_reference(a, data_range)
    return np.array([ssim_with(ref, c) for c in candidates], dtype=np.float64)


def _take_factory(arena):
    """Buffer source: the arena when given, plain ``np.empty`` otherwise."""
    if arena is None:
        return lambda shape: np.empty(shape, dtype=np.float64)
    return lambda shape: arena.take(shape, np.float64)


def _stack_means(maps: np.ndarray) -> np.ndarray:
    """Per-frame means of a contiguous (N, H, W) stack.

    Bit-identical to ``maps[i].mean()`` per frame: the reduction runs
    over the same contiguous H*W values in the same pairwise-summation
    order.
    """
    return maps.reshape(maps.shape[0], -1).mean(axis=1)


def ssim_many_stacked(
    ref: SsimReference, candidates: np.ndarray, arena=None
) -> np.ndarray:
    """Mean SSIM of a stacked candidate tile against one prepared reference.

    The multi-candidate batch kernel of the online loop: ``candidates``
    is an ``(N, H, W)`` tile (float32 tiles welcome — frames are promoted
    to float64 exactly as the scalar path promotes each frame), and the
    3N candidate-side gaussian moments — blur(y), blur(y²), blur(x·y) —
    are computed by a *single* pair of separable correlations over one
    ``(3N, H, W)`` float64 stack.  Results are bit-identical to
    ``[ssim_with(ref, c) for c in candidates]``.

    ``arena`` (a :class:`repro.perf.FrameArena`) supplies the scratch
    stacks so the steady-state loop performs no large allocations.
    """
    candidates = np.asarray(candidates)
    if candidates.ndim != 3:
        raise ValueError("candidates must be an (N, H, W) stack")
    n = candidates.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.float64)
    if candidates.shape[1:] != ref.shape:
        raise ValueError(
            f"frame shapes differ: {ref.shape} vs {candidates.shape[1:]}"
        )
    h, w = ref.shape
    with perf.timed("ssim"):
        perf.count("ssim.batched_candidates", n)
        take = _take_factory(arena)
        stack = take((3 * n, h, w))
        blurred = take((3 * n, h, w))
        scratch = take((3 * n, h, w))
        y = stack[:n]
        np.copyto(y, candidates)  # the float64 promotion of the scalar path
        np.multiply(y, y, out=stack[n:2 * n])
        np.multiply(ref.image, y, out=stack[2 * n:])
        _blur(stack, out=blurred, scratch=scratch)
        mu_y, yy, xy = blurred[:n], blurred[n:2 * n], blurred[2 * n:]
        # The exact elementwise chain of ssim_map_with, written into the
        # already-consumed input rows (out= does not change the values).
        mu_y_sq = np.multiply(mu_y, mu_y, out=stack[:n])
        mu_xy = np.multiply(ref.mu, mu_y, out=stack[n:2 * n])
        sigma_y_sq = np.subtract(yy, mu_y_sq, out=yy)
        sigma_xy = np.subtract(xy, mu_xy, out=xy)
        t1 = np.multiply(2.0, mu_xy, out=scratch[:n])
        np.add(t1, ref.c1, out=t1)
        t2 = np.multiply(2.0, sigma_xy, out=scratch[n:2 * n])
        np.add(t2, ref.c2, out=t2)
        numerator = np.multiply(t1, t2, out=t1)
        d1 = np.add(ref.mu_sq, mu_y_sq, out=scratch[2 * n:])
        np.add(d1, ref.c1, out=d1)
        d2 = np.add(ref.sigma_sq, sigma_y_sq, out=sigma_y_sq)
        np.add(d2, ref.c2, out=d2)
        denominator = np.multiply(d1, d2, out=d1)
        maps = np.divide(numerator, denominator, out=numerator)
        return _stack_means(maps)


def ssim_pairs(pairs, data_range: float = 1.0, arena=None) -> np.ndarray:
    """Mean SSIM of K independent (a, b) frame pairs in one tiled pass.

    The cross-player batch kernel: all 5K gaussian moments — blur(x),
    blur(y), blur(x²), blur(y²), blur(x·y) — stack into one
    ``(5K, H, W)`` float64 tile blurred by a single pair of separable
    correlations.  Every value is bit-identical to
    ``[ssim(a, b) for a, b in pairs]``.  All pairs must share one frame
    shape (callers batch homogeneous work: one session's displayed
    frames at one render resolution).
    """
    pairs = list(pairs)
    if not pairs:
        return np.empty(0, dtype=np.float64)
    if data_range <= 0:
        raise ValueError("data_range must be positive")
    shape = None
    for a, b in pairs:
        _validate_pair(a, b)
        if shape is None:
            shape = a.shape
        elif a.shape != shape:
            raise ValueError(
                f"pairs must share one frame shape: {shape} vs {a.shape}"
            )
    k = len(pairs)
    h, w = shape
    c1, c2 = _stab_constants(data_range)
    with perf.timed("ssim"):
        perf.count("ssim.batched_pairs", k)
        take = _take_factory(arena)
        stack = take((5 * k, h, w))
        blurred = take((5 * k, h, w))
        scratch = take((5 * k, h, w))
        xs, ys = stack[:k], stack[k:2 * k]
        for i, (a, b) in enumerate(pairs):
            np.copyto(xs[i], a)  # the float64 promotion of the scalar path
            np.copyto(ys[i], b)
        np.multiply(xs, xs, out=stack[2 * k:3 * k])
        np.multiply(ys, ys, out=stack[3 * k:4 * k])
        np.multiply(xs, ys, out=stack[4 * k:])
        _blur(stack, out=blurred, scratch=scratch)
        mu_x, mu_y = blurred[:k], blurred[k:2 * k]
        bxx = blurred[2 * k:3 * k]
        byy = blurred[3 * k:4 * k]
        bxy = blurred[4 * k:]
        # prepare_reference's chain, then ssim_map_with's, elementwise.
        mu_x_sq = np.multiply(mu_x, mu_x, out=stack[:k])
        mu_y_sq = np.multiply(mu_y, mu_y, out=stack[k:2 * k])
        mu_xy = np.multiply(mu_x, mu_y, out=stack[2 * k:3 * k])
        sigma_x_sq = np.subtract(bxx, mu_x_sq, out=bxx)
        sigma_y_sq = np.subtract(byy, mu_y_sq, out=byy)
        sigma_xy = np.subtract(bxy, mu_xy, out=bxy)
        t1 = np.multiply(2.0, mu_xy, out=scratch[:k])
        np.add(t1, c1, out=t1)
        t2 = np.multiply(2.0, sigma_xy, out=scratch[k:2 * k])
        np.add(t2, c2, out=t2)
        numerator = np.multiply(t1, t2, out=t1)
        d1 = np.add(mu_x_sq, mu_y_sq, out=mu_x_sq)
        np.add(d1, c1, out=d1)
        d2 = np.add(sigma_x_sq, sigma_y_sq, out=sigma_x_sq)
        np.add(d2, c2, out=d2)
        denominator = np.multiply(d1, d2, out=d1)
        maps = np.divide(numerator, denominator, out=numerator)
        return _stack_means(maps)


def ssim_map(
    a: np.ndarray, b: np.ndarray, data_range: float = 1.0
) -> np.ndarray:
    """Per-pixel SSIM index map between two luminance frames."""
    _validate_pair(a, b)
    return ssim_map_with(prepare_reference(a, data_range), b)


def ssim(a: np.ndarray, b: np.ndarray, data_range: float = 1.0) -> float:
    """Mean SSIM between two luminance frames (1.0 = identical)."""
    return float(ssim_map(a, b, data_range).mean())


def is_similar(
    a: np.ndarray, b: np.ndarray, threshold: float = SSIM_GOOD
) -> bool:
    """Whether two frames pass the paper's reuse-quality bar."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    return ssim(a, b) > threshold
