"""Structural Similarity (SSIM), Wang et al. 2004.

The paper uses SSIM as the *de facto* frame-similarity metric, with 0.90 as
the "good visual quality" threshold (from Kahawai's human-subject study).
Everything that decides whether a cached far-BE frame may be reused — the
dist_thresh binary search, the similarity CDFs of Figs. 1/2/5 — runs
through this implementation.

Standard formulation: luminance/contrast/structure comparisons over a
gaussian-weighted sliding window (sigma 1.5, 11x11 support), stabilised by
C1 = (K1 L)^2 and C2 = (K2 L)^2 with K1=0.01, K2=0.03.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

# The reuse threshold from the paper (SSIM > 0.90 => "good" visual quality).
SSIM_GOOD = 0.90

_K1 = 0.01
_K2 = 0.03
_SIGMA = 1.5
# 11-tap support like the reference implementation: truncate at 5 sigma-units.
_TRUNCATE = 5.0 / _SIGMA


def _validate_pair(a: np.ndarray, b: np.ndarray) -> None:
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("SSIM operates on 2D luminance frames")
    if a.shape != b.shape:
        raise ValueError(f"frame shapes differ: {a.shape} vs {b.shape}")
    if a.shape[0] < 4 or a.shape[1] < 4:
        raise ValueError("frames too small for windowed SSIM")


def ssim_map(
    a: np.ndarray, b: np.ndarray, data_range: float = 1.0
) -> np.ndarray:
    """Per-pixel SSIM index map between two luminance frames."""
    _validate_pair(a, b)
    if data_range <= 0:
        raise ValueError("data_range must be positive")
    x = a.astype(np.float64)
    y = b.astype(np.float64)
    c1 = (_K1 * data_range) ** 2
    c2 = (_K2 * data_range) ** 2

    blur = lambda img: gaussian_filter(img, sigma=_SIGMA, truncate=_TRUNCATE)
    mu_x = blur(x)
    mu_y = blur(y)
    mu_x_sq = mu_x * mu_x
    mu_y_sq = mu_y * mu_y
    mu_xy = mu_x * mu_y
    sigma_x_sq = blur(x * x) - mu_x_sq
    sigma_y_sq = blur(y * y) - mu_y_sq
    sigma_xy = blur(x * y) - mu_xy

    numerator = (2.0 * mu_xy + c1) * (2.0 * sigma_xy + c2)
    denominator = (mu_x_sq + mu_y_sq + c1) * (sigma_x_sq + sigma_y_sq + c2)
    return numerator / denominator


def ssim(a: np.ndarray, b: np.ndarray, data_range: float = 1.0) -> float:
    """Mean SSIM between two luminance frames (1.0 = identical)."""
    return float(ssim_map(a, b, data_range).mean())


def is_similar(
    a: np.ndarray, b: np.ndarray, threshold: float = SSIM_GOOD
) -> bool:
    """Whether two frames pass the paper's reuse-quality bar."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    return ssim(a, b) > threshold
