"""Shared resources for the discrete-event simulator.

The key abstraction is :class:`FluidShareServer`, a processor-sharing
server: all active jobs progress simultaneously, each receiving an equal
share of the capacity.  This is the standard fluid model of a shared
wireless medium and is what produces the paper's headline scaling failure:
N players prefetching concurrently each see ~1/N of the 802.11ac
throughput, so per-frame network delay grows linearly with N (Table 1).

A plain FIFO :class:`Queue` and a counting :class:`Semaphore` support the
server-side request handling and bounded decoder slots.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict

from .engine import Event, SimulationError, Simulator


@dataclass
class _Flow:
    """An in-flight job on a :class:`FluidShareServer`."""

    flow_id: int
    remaining: float  # remaining work (e.g. megabits)
    done: Event
    started_at: float = 0.0


class FluidShareServer:
    """Processor-sharing server with fixed total capacity.

    ``capacity`` is work-units per millisecond (for the WiFi model:
    megabits per ms).  ``overhead_ms`` is a fixed per-job latency added
    before service begins (MAC/RTT-style overhead).
    """

    def __init__(
        self, sim: Simulator, capacity: float, overhead_ms: float = 0.0
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if overhead_ms < 0:
            raise ValueError("overhead_ms must be non-negative")
        self.sim = sim
        self.capacity = capacity
        self.overhead_ms = overhead_ms
        self._flows: Dict[int, _Flow] = {}
        self._cancelled: set = set()  # done-events withdrawn before service
        self._next_id = 0
        self._last_update = 0.0
        self._completion_token = 0  # invalidates stale completion callbacks
        self.total_work_done = 0.0
        self.busy_time = 0.0

    # ------------------------------------------------------------------

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def current_rate(self) -> float:
        """Per-flow service rate right now (0 when idle)."""
        n = len(self._flows)
        return self.capacity / n if n else 0.0

    def submit(self, work: float) -> Event:
        """Submit a job of ``work`` units; returns its completion event."""
        if work < 0:
            raise ValueError("work must be non-negative")
        done = self.sim.event()
        if self.overhead_ms > 0:
            self.sim.schedule(self.overhead_ms, lambda: self._start_flow(work, done))
        else:
            self._start_flow(work, done)
        return done

    def cancel(self, done: Event) -> bool:
        """Withdraw the job whose completion event is ``done``.

        The job stops consuming capacity immediately and ``done`` never
        fires (callers racing it against a timeout must stop waiting on
        it).  Returns False when the job already completed — the caller's
        retry then raced a success and should treat it as such.
        """
        for flow_id, flow in self._flows.items():
            if flow.done is done:
                self._advance()
                del self._flows[flow_id]
                self._reschedule_completion()
                return True
        if done in self._cancelled or done.triggered:
            return False
        # Still in its pre-service overhead wait: mark it so _start_flow
        # drops it instead of admitting it.
        self._cancelled.add(done)
        return True

    def utilization(self, horizon_ms: float) -> float:
        """Fraction of ``horizon_ms`` during which the server was busy."""
        if horizon_ms <= 0:
            raise ValueError("horizon_ms must be positive")
        self._advance()
        return min(1.0, self.busy_time / horizon_ms)

    # ------------------------------------------------------------------

    def _start_flow(self, work: float, done: Event) -> None:
        if done in self._cancelled:
            self._cancelled.discard(done)
            return
        self._advance()
        flow = _Flow(
            flow_id=self._next_id,
            remaining=work,
            done=done,
            started_at=self.sim.now,
        )
        self._next_id += 1
        self._flows[flow.flow_id] = flow
        self._reschedule_completion()

    def _advance(self) -> None:
        """Drain the work performed since the last state change."""
        elapsed = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if elapsed <= 0 or not self._flows:
            return
        rate = self.capacity / len(self._flows)
        drained = rate * elapsed
        for flow in self._flows.values():
            actually_drained = min(drained, flow.remaining)
            flow.remaining -= actually_drained
            self.total_work_done += actually_drained
        self.busy_time += elapsed

    def _reschedule_completion(self) -> None:
        """(Re)arm the timer for the next flow completion."""
        self._completion_token += 1
        token = self._completion_token
        if not self._flows:
            return
        rate = self.capacity / len(self._flows)
        soonest = min(self._flows.values(), key=lambda f: f.remaining)
        delay = soonest.remaining / rate
        self.sim.schedule(delay, lambda: self._complete_due(token))

    def _complete_due(self, token: int) -> None:
        if token != self._completion_token:
            return  # superseded by a later arrival/departure
        self._advance()
        finished = [f for f in self._flows.values() if f.remaining <= 1e-12]
        if not finished and self._flows:
            # The timer fired un-superseded, so the soonest flow is done by
            # construction.  At large sim.now the rearm delay for a few ulps
            # of residual work can round below one ulp of the clock, freezing
            # simulated time in a rearm/fire livelock -- force completion.
            soonest = min(self._flows.values(), key=lambda f: f.remaining)
            self.total_work_done += soonest.remaining
            soonest.remaining = 0.0
            finished = [soonest]
        for flow in finished:
            del self._flows[flow.flow_id]
        self._reschedule_completion()
        for flow in finished:
            flow.done.succeed(self.sim.now - flow.started_at)


class Semaphore:
    """Counting semaphore for bounded concurrent stages (e.g. decoder slots)."""

    def __init__(self, sim: Simulator, slots: int) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.sim = sim
        self.slots = slots
        self._available = slots
        self._waiting: Deque[Event] = deque()

    def acquire(self) -> Event:
        """Take a slot; the returned event fires when granted."""
        ev = self.sim.event()
        if self._available > 0:
            self._available -= 1
            self.sim.schedule(0.0, lambda: ev.succeed())
        else:
            self._waiting.append(ev)
        return ev

    def release(self) -> None:
        """Return a slot, waking the oldest waiter if any."""
        if self._waiting:
            self._waiting.popleft().succeed()
        else:
            if self._available >= self.slots:
                raise SimulationError("release without matching acquire")
            self._available += 1


class Queue:
    """Unbounded FIFO queue connecting simulator processes."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Enqueue an item, waking the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Dequeue; the returned event fires with the item."""
        ev = self.sim.event()
        if self._items:
            item = self._items.popleft()
            self.sim.schedule(0.0, lambda: ev.succeed(item))
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
