"""Discrete-event simulation substrate (engine + shared resources)."""

from .engine import Event, SimulationError, Simulator, all_of, any_of
from .resources import FluidShareServer, Queue, Semaphore

__all__ = [
    "Event",
    "FluidShareServer",
    "Queue",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "all_of",
    "any_of",
]
