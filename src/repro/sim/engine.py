"""Discrete-event simulation core.

Everything time-dependent in the reproduction — WiFi transfers, the
per-frame client pipeline, multi-player contention — runs on this engine.
Time is in **milliseconds** throughout the code base (the paper's QoE
numbers are all ms-scale: 16.7 ms frame budget, 10-25 ms motion-to-photon).

The engine supports two styles:

* callback events scheduled with :meth:`Simulator.schedule`, and
* generator *processes* (:meth:`Simulator.spawn`) that ``yield`` either a
  float delay or an :class:`Event` to wait on — enough to express the
  concurrent 4-task rendering pipeline of §5.1 directly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Tuple

ProcessGen = Generator[Any, Any, None]


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (e.g. scheduling in the past)."""


class Event:
    """A one-shot occurrence that processes can wait on.

    Mirrors simpy's event in miniature: an event is *triggered* at most
    once, optionally carrying a value delivered to every waiter.
    """

    __slots__ = ("sim", "_waiters", "triggered", "value")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._waiters: List[Tuple[ProcessGen, "Event"]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, delivering ``value`` to every waiter."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc, done in waiters:
            # Resume via the scheduler (not synchronously) so that actions
            # sharing a timestamp run in deterministic FIFO order and
            # succeed() is never re-entered mid-callback.
            self.sim.schedule(
                0.0, lambda p=proc, d=done: self.sim._step_process(p, value, d)
            )

    def _add_waiter(self, proc: ProcessGen, done: "Event") -> None:
        self._waiters.append((proc, done))


class Simulator:
    """An event-driven simulator with a monotonically advancing clock.

    ``tracer`` (a :class:`repro.telemetry.SpanTracer`, or None) hooks the
    dispatch loop: every run emits a ``sim.run`` span with the dispatched
    event count, and the event-queue depth is sampled as a counter every
    :data:`Simulator.TRACE_SAMPLE_EVERY` dispatches.  ``metrics`` (a
    :class:`repro.telemetry.MetricsHub`, or None) is *pumped* from the
    same loop — every :data:`Simulator.METRICS_PUMP_EVERY` dispatches the
    hub gets a chance to stamp any sim-time sample boundaries the clock
    has crossed (retroactively, at exact boundary times), and a
    ``sim_queue_depth`` gauge probe keeps queue depth in the sampled
    series.  Both hooks are purely observational — they never schedule
    events or alter dispatch order — and when absent cost one
    predictable branch per dispatch.
    """

    # Queue-depth counter sampling period, in dispatched events.
    TRACE_SAMPLE_EVERY = 256
    # Metrics pump period, in dispatched events.  Samples are stamped at
    # sim-time boundaries regardless, so this only bounds how much sim
    # time can elapse between stamping passes, not the sample times.
    METRICS_PUMP_EVERY = 64

    def __init__(self, tracer=None, metrics=None) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._running = False
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self.metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )
        if self.metrics is not None:
            depth_gauge = self.metrics.gauge("sim_queue_depth")
            queue = self._queue
            self.metrics.register_probe(
                lambda: depth_gauge.set(float(len(queue)))
            )
        self.dispatched = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` ms of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ms in the past")
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), action))

    def event(self) -> Event:
        """A fresh untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float) -> Event:
        """An event that triggers after ``delay`` ms."""
        ev = self.event()
        self.schedule(delay, lambda: ev.succeed())
        return ev

    # ------------------------------------------------------------------
    # Generator processes
    # ------------------------------------------------------------------

    def spawn(self, process: ProcessGen) -> Event:
        """Start a generator process; returns an event fired at completion.

        The process may ``yield``:

        * a non-negative ``float``/``int`` — sleep for that many ms;
        * an :class:`Event` — suspend until it triggers (receiving its
          value as the result of the ``yield``).
        """
        done = self.event()
        self._step_process(process, None, done)
        return done

    def _step_process(self, proc: ProcessGen, send_value: Any, done: Event) -> None:
        try:
            yielded = proc.send(send_value)
        except StopIteration as stop:
            done.succeed(stop.value)
            return
        if isinstance(yielded, Event):
            if yielded.triggered:
                self.schedule(
                    0.0, lambda: self._step_process(proc, yielded.value, done)
                )
            else:
                yielded._add_waiter(proc, done)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(f"process yielded negative delay {yielded}")
            self.schedule(
                float(yielded), lambda: self._step_process(proc, None, done)
            )
        else:
            raise SimulationError(
                f"process yielded unsupported value {yielded!r}; "
                "yield a delay (ms) or an Event"
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_until(self, t_end: float) -> None:
        """Process events until the clock would pass ``t_end`` ms."""
        if t_end < self.now:
            raise SimulationError(f"t_end {t_end} is before now {self.now}")
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        tracer = self.tracer
        metrics = self.metrics
        observed = tracer is not None or metrics is not None
        t_start = self.now
        dispatched = 0
        try:
            while self._queue and self._queue[0][0] <= t_end:
                when, _seq, action = heapq.heappop(self._queue)
                self.now = when
                action()
                if observed:
                    dispatched += 1
                    if (
                        tracer is not None
                        and dispatched % Simulator.TRACE_SAMPLE_EVERY == 0
                    ):
                        tracer.counter(
                            "sim.queue_depth", self.now, len(self._queue)
                        )
                    if (
                        metrics is not None
                        and dispatched % Simulator.METRICS_PUMP_EVERY == 0
                    ):
                        metrics.maybe_sample(self.now)
            self.now = t_end
        finally:
            self._running = False
            self.dispatched += dispatched
            if metrics is not None:
                metrics.maybe_sample(self.now)
            if tracer is not None:
                tracer.complete(
                    "sim.run", -1, "sim", t_start, self.now - t_start,
                    cat="sim", args={"dispatched": dispatched},
                )

    def run(self) -> None:
        """Process events until the queue drains."""
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        tracer = self.tracer
        metrics = self.metrics
        observed = tracer is not None or metrics is not None
        t_start = self.now
        dispatched = 0
        try:
            while self._queue:
                when, _seq, action = heapq.heappop(self._queue)
                self.now = when
                action()
                if observed:
                    dispatched += 1
                    if (
                        tracer is not None
                        and dispatched % Simulator.TRACE_SAMPLE_EVERY == 0
                    ):
                        tracer.counter(
                            "sim.queue_depth", self.now, len(self._queue)
                        )
                    if (
                        metrics is not None
                        and dispatched % Simulator.METRICS_PUMP_EVERY == 0
                    ):
                        metrics.maybe_sample(self.now)
        finally:
            self._running = False
            self.dispatched += dispatched
            if metrics is not None:
                metrics.maybe_sample(self.now)
            if tracer is not None:
                tracer.complete(
                    "sim.run", -1, "sim", t_start, self.now - t_start,
                    cat="sim", args={"dispatched": dispatched},
                )

    @property
    def pending_events(self) -> int:
        return len(self._queue)


def any_of(sim: Simulator, events: List[Event]) -> Event:
    """An event that fires as soon as the *first* event in ``events`` fires.

    Its value is the ``(event, value)`` pair of the winner, so callers can
    tell which constituent resolved the race (e.g. "did the transfer beat
    the prefetch deadline?").  Later events still trigger normally; their
    values are simply not delivered through the combined event.
    """
    if not events:
        raise SimulationError("any_of needs at least one event")
    combined = sim.event()

    def make_waiter(ev: Event) -> ProcessGen:
        def waiter() -> ProcessGen:
            value = yield ev
            if not combined.triggered:
                combined.succeed((ev, value))

        return waiter()

    for ev in events:
        sim.spawn(make_waiter(ev))
    return combined


def all_of(sim: Simulator, events: List[Event]) -> Event:
    """An event that fires when every event in ``events`` has fired.

    Its value is the list of the constituent events' values, in order.
    Expresses Eq. 2's ``max(...)`` over the pipeline's parallel tasks: the
    combined event fires at the *latest* completion time.
    """
    combined = sim.event()
    if not events:
        sim.schedule(0.0, lambda: combined.succeed([]))
        return combined
    remaining = [len(events)]

    def make_waiter(ev: Event) -> ProcessGen:
        def waiter() -> ProcessGen:
            yield ev
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.succeed([e.value for e in events])

        return waiter()

    for ev in events:
        sim.spawn(make_waiter(ev))
    return combined
