"""Player trajectories: timestamped paths through the virtual world.

Every similarity study in the paper starts from a recorded trajectory
("we record the player trajectory in the virtual world during game play",
§4.1), and the caching experiments replay them (§4.6, §7.4).  A
:class:`Trajectory` is an immutable sequence of timestamped samples with
the derived views the experiments need: grid-point sequences, distance
subsampling, and proximity statistics between two players.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..geometry import GridPoint, Vec2, WorldGrid


@dataclass(frozen=True)
class TrajectorySample:
    """One observation of a player: time, ground position, heading."""

    t_ms: float
    position: Vec2
    heading: float  # movement direction, radians

    def __post_init__(self) -> None:
        if self.t_ms < 0:
            raise ValueError("t_ms must be non-negative")


class Trajectory:
    """An ordered, time-increasing sequence of samples for one player."""

    def __init__(self, samples: Sequence[TrajectorySample], player_id: int = 0) -> None:
        if not samples:
            raise ValueError("trajectory needs at least one sample")
        times = [s.t_ms for s in samples]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("samples must be strictly time-increasing")
        self.samples: Tuple[TrajectorySample, ...] = tuple(samples)
        self.player_id = player_id

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> TrajectorySample:
        return self.samples[index]

    @property
    def duration_ms(self) -> float:
        return self.samples[-1].t_ms - self.samples[0].t_ms

    def positions(self) -> List[Vec2]:
        """Ground positions of every sample, in order."""
        return [s.position for s in self.samples]

    def path_length(self) -> float:
        """Total ground distance travelled."""
        positions = self.positions()
        return sum(a.distance_to(b) for a, b in zip(positions, positions[1:]))

    # ------------------------------------------------------------------
    # Grid views
    # ------------------------------------------------------------------

    def grid_points(self, grid: WorldGrid) -> List[GridPoint]:
        """The grid point under each sample (with repeats)."""
        return [grid.snap(s.position) for s in self.samples]

    def distinct_grid_points(self, grid: WorldGrid) -> List[GridPoint]:
        """Grid points visited, consecutive duplicates collapsed.

        This is the sequence of BE-frame viewpoints: a new panoramic frame
        is needed each time the player crosses to a new grid point.
        """
        points: List[GridPoint] = []
        for sample in self.samples:
            gp = grid.snap(sample.position)
            if not points or points[-1] != gp:
                points.append(gp)
        return points

    # ------------------------------------------------------------------
    # Subsampling
    # ------------------------------------------------------------------

    def subsample_by_distance(self, min_spacing: float) -> "Trajectory":
        """Keep samples at least ``min_spacing`` metres apart (plus the
        first), preserving order — used to bound offline rendering work."""
        if min_spacing <= 0:
            raise ValueError("min_spacing must be positive")
        kept = [self.samples[0]]
        for sample in self.samples[1:]:
            if sample.position.distance_to(kept[-1].position) >= min_spacing:
                kept.append(sample)
        return Trajectory(kept, player_id=self.player_id)

    def every_nth(self, n: int) -> "Trajectory":
        """Keep every n-th sample (plus the first)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return Trajectory(self.samples[::n], player_id=self.player_id)


def proximity_stats(a: Trajectory, b: Trajectory) -> Tuple[float, float]:
    """(mean, max) distance between two players sampled index-aligned.

    Quantifies the multiplayer movement proximity the paper observes for
    outdoor group games (§4.1).
    """
    n = min(len(a), len(b))
    if n == 0:
        raise ValueError("empty trajectories")
    distances = [
        a[i].position.distance_to(b[i].position) for i in range(n)
    ]
    return sum(distances) / n, max(distances)
