"""Trace recording and replay.

The paper's user study "first collected 6 single-player movement traces ...
and then replayed the traces to the participants" (§7.4), and the caching
experiments of §4.6 replay recorded multi-player traces.  This module
serializes trajectories to plain JSON so experiments are replayable and
diffable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..geometry import Vec2
from .trajectory import Trajectory, TrajectorySample

_FORMAT_VERSION = 1


def trajectory_to_dict(trajectory: Trajectory) -> dict:
    """JSON-ready form of one trajectory."""
    return {
        "version": _FORMAT_VERSION,
        "player_id": trajectory.player_id,
        "samples": [
            [s.t_ms, s.position.x, s.position.y, s.heading]
            for s in trajectory.samples
        ],
    }


def trajectory_from_dict(payload: dict) -> Trajectory:
    """Inverse of :func:`trajectory_to_dict`."""
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace version {payload.get('version')!r}")
    samples = [
        TrajectorySample(t_ms=t, position=Vec2(x, y), heading=heading)
        for t, x, y, heading in payload["samples"]
    ]
    return Trajectory(samples, player_id=int(payload.get("player_id", 0)))


def save_traces(
    trajectories: List[Trajectory], path: Union[str, Path]
) -> None:
    """Write a list of player traces to a JSON file."""
    payload = {
        "version": _FORMAT_VERSION,
        "traces": [trajectory_to_dict(t) for t in trajectories],
    }
    Path(path).write_text(json.dumps(payload))


def load_traces(path: Union[str, Path]) -> List[Trajectory]:
    """Read player traces back from a JSON file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace file version {payload.get('version')!r}")
    return [trajectory_from_dict(t) for t in payload["traces"]]
