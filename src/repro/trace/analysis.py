"""Movement-trace analysis.

Quantifies the locomotion properties the paper's caching results rest on:
speed, grid-point churn (how often a new panoramic frame is needed),
self-revisit rate (why exact matching fails, §4.6), and pairwise path
overlap (why inter-player exact reuse fails).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..geometry import WorldGrid
from .trajectory import Trajectory


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one movement trace."""

    duration_s: float
    path_length_m: float
    mean_speed_mps: float
    grid_crossings: int  # distinct-grid-point transitions
    crossings_per_second: float
    revisit_rate: float  # fraction of crossings landing on a seen point

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")


def analyze_trace(trajectory: Trajectory, grid: WorldGrid) -> TraceStats:
    """Compute a trace's movement statistics against a world grid."""
    duration_s = max(trajectory.duration_ms / 1000.0, 1e-9)
    path = trajectory.path_length()
    crossings = 0
    revisits = 0
    seen = set()
    previous = None
    for sample in trajectory.samples:
        gp = grid.snap(sample.position)
        if gp != previous:
            if previous is not None:
                crossings += 1
                if gp in seen:
                    revisits += 1
            seen.add(gp)
            previous = gp
    return TraceStats(
        duration_s=duration_s,
        path_length_m=path,
        mean_speed_mps=path / duration_s,
        grid_crossings=crossings,
        crossings_per_second=crossings / duration_s,
        revisit_rate=revisits / crossings if crossings else 0.0,
    )


def path_overlap(a: Trajectory, b: Trajectory, grid: WorldGrid) -> float:
    """Fraction of A's distinct grid points that B also visits.

    The §4.6 observation behind cache Version 2's zero hit rate: "even for
    VR games with high player movement locality, the trajectories of
    different players rarely overlap exactly".
    """
    points_a = set(a.distinct_grid_points(grid))
    if not points_a:
        return 0.0
    points_b = set(b.distinct_grid_points(grid))
    return len(points_a & points_b) / len(points_a)


def prefetch_demand_hz(trajectory: Trajectory, grid: WorldGrid) -> float:
    """Panoramic-frame demand without caching: new frames per second.

    This is the rate Furion must fetch at — multiplying it by the frame
    size gives Table 9's Multi-Furion bandwidth.
    """
    return analyze_trace(trajectory, grid).crossings_per_second
