"""Foreground interactions: the content rendered locally every frame.

FI is "triggered by players operating the controller or signals from other
players" (§2.2): avatars/vehicles of all players plus transient action
effects.  For rendering, each player's FI materializes as scene objects at
the players' current positions; for the render-cost model, its triangle
budget is the game's ``fi_triangles``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..geometry import Vec2, Vec3
from ..world.games import GameWorld
from ..world.objects import SceneObject

# Reserved id space so FI objects never collide with scene object ids.
_FI_ID_BASE = 10_000_000


@dataclass(frozen=True)
class FiEvent:
    """A transient foreground action (shot fired, ball hit, horn...)."""

    t_ms: float
    player_id: int
    kind: str


def avatars_at(
    world: GameWorld, positions: Sequence[Vec2], exclude_player: int = -1
) -> List[SceneObject]:
    """FI avatar objects for every player at their current positions.

    ``exclude_player`` omits the local player (you do not see your own
    avatar, only your hands/vehicle cockpit — which is part of the FI
    budget but not of the world geometry).
    """
    is_racing = world.track is not None
    avatars = []
    for player_id, position in enumerate(positions):
        if player_id == exclude_player:
            continue
        radius = 2.0 if is_racing else 0.5
        luminance = 0.72 if is_racing else 0.62
        z = world.terrain(position) + radius
        avatars.append(
            SceneObject(
                object_id=_FI_ID_BASE + player_id,
                kind_name="car" if is_racing else "person",
                center=Vec3(position.x, position.y, z),
                radius=radius,
                triangles=world.spec.fi_triangles // max(1, len(positions)),
                luminance=luminance,
                contrast=0.3,
                texture_seed=9000 + player_id,
            )
        )
    return avatars


def generate_fi_events(
    n_players: int, duration_s: float, seed: int, rate_hz: float = 0.8
) -> List[FiEvent]:
    """A Poisson stream of controller actions per player.

    Rate defaults to roughly one action per player per 1.25 s — the
    shooting/hitting cadence of the study games.
    """
    if n_players < 1 or duration_s <= 0 or rate_hz <= 0:
        raise ValueError("invalid FI event parameters")
    rng = np.random.default_rng(seed)
    events: List[FiEvent] = []
    for player_id in range(n_players):
        t = 0.0
        while True:
            t += float(rng.exponential(1000.0 / rate_hz))
            if t >= duration_s * 1000.0:
                break
            events.append(FiEvent(t_ms=t, player_id=player_id, kind="action"))
    events.sort(key=lambda e: e.t_ms)
    return events
