"""Player traces: movement, head pose, FI events, record/replay."""

from .analysis import TraceStats, analyze_trace, path_overlap, prefetch_demand_hz
from .fi import FiEvent, avatars_at, generate_fi_events
from .headpose import HeadPose, HeadPoseModel, head_poses_for
from .movement import (
    FRAME_MS,
    TrackFollower,
    WaypointRoamer,
    generate_party,
    generate_trajectory,
)
from .recorder import (
    load_traces,
    save_traces,
    trajectory_from_dict,
    trajectory_to_dict,
)
from .trajectory import Trajectory, TrajectorySample, proximity_stats

__all__ = [
    "FRAME_MS",
    "FiEvent",
    "HeadPose",
    "HeadPoseModel",
    "TraceStats",
    "TrackFollower",
    "Trajectory",
    "TrajectorySample",
    "WaypointRoamer",
    "analyze_trace",
    "avatars_at",
    "generate_fi_events",
    "generate_party",
    "generate_trajectory",
    "head_poses_for",
    "load_traces",
    "path_overlap",
    "prefetch_demand_hz",
    "proximity_stats",
    "save_traces",
    "trajectory_from_dict",
    "trajectory_to_dict",
]
