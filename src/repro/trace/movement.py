"""Genre-specific player movement models.

Three locomotion styles cover the study's nine games (Table 2):

* racing games — cars follow the track centreline with lateral wander and
  speed variation (:class:`TrackFollower`);
* outdoor roaming/adventure — players walk between random reachable
  waypoints (:class:`WaypointRoamer`);
* multiplayer sessions — follower players shadow a leader with an offset,
  reproducing the close-proximity group movement the paper observes ("in a
  typical car racing game, multiple cars will chase each other closely in
  the same track, and in an adventure game, multiple avatars closely follow
  each other", §4.1) while *never tracing exactly the same path* (the
  observation behind cache Versions 1/2 scoring zero hits, §4.6).

All models are deterministic in their seed.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..geometry import Vec2
from ..world.games import GameWorld
from .trajectory import Trajectory, TrajectorySample

FRAME_MS = 1000.0 / 60.0


class TrackFollower:
    """Car movement along a closed track with wander and speed jitter."""

    def __init__(self, world: GameWorld, seed: int, start_arc: float = 0.0) -> None:
        if world.track is None:
            raise ValueError(f"game {world.name!r} has no track")
        self.world = world
        self.track = world.track
        self.rng = np.random.default_rng(seed)
        self.arc = start_arc
        self.lateral = 0.0

    def step(self, dt_ms: float) -> Vec2:
        """Advance the car by ``dt_ms`` and return its new position."""
        profile = self.world.spec.player
        jitter = 1.0 + profile.speed_jitter * float(self.rng.uniform(-1.0, 1.0))
        self.arc += profile.speed * jitter * dt_ms / 1000.0
        # Lateral wander: bounded random walk across the lane.
        max_lateral = self.world.spec.track_half_width * 0.7
        self.lateral += float(self.rng.normal(0.0, 0.08))
        self.lateral = max(-max_lateral, min(max_lateral, self.lateral))
        center = self.track.point_at(self.arc)
        heading = self.track.heading_at(self.arc)
        normal = Vec2.from_angle(heading + math.pi / 2)
        return self.world.bounds.clamp(center + normal * self.lateral)

    def heading(self) -> float:
        """Current movement direction along the track."""
        return self.track.heading_at(self.arc)


class WaypointRoamer:
    """Walking movement between random reachable waypoints.

    An optional ``leader`` trajectory turns the roamer into a follower:
    its waypoints are sampled near the leader's concurrent position,
    keeping the group close without path-identical movement.
    """

    def __init__(
        self,
        world: GameWorld,
        seed: int,
        start: Optional[Vec2] = None,
        leader: Optional[Trajectory] = None,
        follow_radius: float = 4.0,
    ) -> None:
        if follow_radius <= 0:
            raise ValueError("follow_radius must be positive")
        self.world = world
        self.rng = np.random.default_rng(seed)
        self.position = start if start is not None else world.spawn_points(1)[0]
        self.heading = float(self.rng.uniform(0, 2 * math.pi))
        self.leader = leader
        self.follow_radius = follow_radius
        self._sample_index = 0
        self.target = self._next_target(0.0)

    def _next_target(self, t_ms: float) -> Vec2:
        if self.leader is not None:
            anchor = self._leader_position(t_ms)
            for _ in range(32):
                offset = Vec2.from_angle(
                    float(self.rng.uniform(0, 2 * math.pi)),
                    float(self.rng.uniform(1.0, self.follow_radius)),
                )
                candidate = self.world.bounds.clamp(anchor + offset)
                if self.world.grid.is_reachable(self.world.grid.snap(candidate)):
                    return candidate
            return anchor
        for _ in range(64):
            candidate = self.world.bounds.sample(self.rng, 1)[0]
            if (
                self.world.grid.is_reachable(self.world.grid.snap(candidate))
                and candidate.distance_to(self.position) > 3.0
            ):
                return candidate
        return self.position

    def _leader_position(self, t_ms: float) -> Vec2:
        assert self.leader is not None
        while (
            self._sample_index < len(self.leader) - 1
            and self.leader[self._sample_index].t_ms < t_ms
        ):
            self._sample_index += 1
        return self.leader[self._sample_index].position

    def step(self, dt_ms: float, t_ms: float) -> Vec2:
        """Advance the walker by ``dt_ms`` and return its new position."""
        profile = self.world.spec.player
        to_target = self.target - self.position
        if to_target.norm() < 0.5:
            self.target = self._next_target(t_ms)
            to_target = self.target - self.position
        if to_target.norm() > 1e-9:
            desired = to_target.angle()
            # Turn-rate-limited heading update.
            diff = (desired - self.heading + math.pi) % (2 * math.pi) - math.pi
            max_turn = profile.turn_rate * dt_ms / 1000.0
            self.heading += max(-max_turn, min(max_turn, diff))
        jitter = 1.0 + profile.speed_jitter * float(self.rng.uniform(-1.0, 1.0))
        step_len = profile.speed * jitter * dt_ms / 1000.0
        candidate = self.world.bounds.clamp(
            self.position + Vec2.from_angle(self.heading, step_len)
        )
        if self.world.grid.is_reachable(self.world.grid.snap(candidate)):
            self.position = candidate
        else:
            # Blocked: bounce toward a fresh waypoint next step.
            self.heading += math.pi / 2
            self.target = self._next_target(t_ms)
        return self.position


def generate_trajectory(
    world: GameWorld,
    duration_s: float,
    seed: int,
    player_index: int = 0,
    leader: Optional[Trajectory] = None,
    dt_ms: float = FRAME_MS,
    follow_radius: float = 4.0,
) -> Trajectory:
    """Generate one player's trajectory for ``duration_s`` of game play.

    Racing games use :class:`TrackFollower` (followers start a few metres
    behind the leader on the same track); other games use
    :class:`WaypointRoamer` (followers shadow the leader's position).
    """
    if duration_s <= 0 or dt_ms <= 0:
        raise ValueError("duration_s and dt_ms must be positive")
    steps = int(round(duration_s * 1000.0 / dt_ms))
    samples: List[TrajectorySample] = []
    if world.track is not None:
        follower = TrackFollower(
            world, seed=seed, start_arc=-8.0 * player_index
        )
        for k in range(steps):
            position = follower.step(dt_ms)
            samples.append(
                TrajectorySample(t_ms=k * dt_ms, position=position, heading=follower.heading())
            )
    else:
        start = world.spawn_points(max(1, player_index + 1))[player_index]
        roamer = WaypointRoamer(
            world, seed=seed, start=start, leader=leader,
            follow_radius=follow_radius,
        )
        for k in range(steps):
            t = k * dt_ms
            position = roamer.step(dt_ms, t)
            samples.append(
                TrajectorySample(t_ms=t, position=position, heading=roamer.heading)
            )
    return Trajectory(samples, player_id=player_index)


def generate_party(
    world: GameWorld,
    n_players: int,
    duration_s: float,
    seed: int,
    follow_radius: float = 4.0,
) -> List[Trajectory]:
    """Trajectories for a party of ``n_players`` moving in close proximity.

    Player 0 leads; the rest follow (racing followers simply start behind
    on the track).  Seeds are decorrelated per player, so no two players
    ever trace identical paths.
    """
    if n_players < 1:
        raise ValueError("n_players must be >= 1")
    leader = generate_trajectory(world, duration_s, seed=seed, player_index=0)
    party = [leader]
    for index in range(1, n_players):
        party.append(
            generate_trajectory(
                world,
                duration_s,
                seed=seed + 1000 * index,
                player_index=index,
                leader=leader if world.track is None else None,
                follow_radius=follow_radius,
            )
        )
    return party
