"""Head orientation over time.

After reaching a grid point "the player may change her head orientation
which is hard to predict" (§2.2) — the reason panoramic frames are
prefetched rather than FoV frames.  Head yaw follows the movement heading
with an Ornstein-Uhlenbeck wander (players glance around); pitch is a
small bounded wander around level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from .trajectory import Trajectory


@dataclass(frozen=True)
class HeadPose:
    """Yaw/pitch at one trajectory sample (radians)."""

    t_ms: float
    yaw: float
    pitch: float


class HeadPoseModel:
    """OU-process head wander anchored to the movement heading."""

    def __init__(
        self,
        seed: int,
        yaw_sigma: float = 0.35,
        pitch_sigma: float = 0.10,
        reversion_per_s: float = 1.8,
        max_pitch: float = math.radians(35.0),
    ) -> None:
        if yaw_sigma < 0 or pitch_sigma < 0 or reversion_per_s <= 0:
            raise ValueError("invalid head-pose parameters")
        self.rng = np.random.default_rng(seed)
        self.yaw_sigma = yaw_sigma
        self.pitch_sigma = pitch_sigma
        self.reversion_per_s = reversion_per_s
        self.max_pitch = max_pitch
        self._yaw_offset = 0.0
        self._pitch = 0.0

    def step(self, heading: float, dt_ms: float) -> HeadPose:
        """Advance the wander by ``dt_ms`` anchored at ``heading``."""
        dt = dt_ms / 1000.0
        k = min(1.0, self.reversion_per_s * dt)
        noise = math.sqrt(max(dt, 1e-9))
        self._yaw_offset += -k * self._yaw_offset + self.yaw_sigma * noise * float(
            self.rng.normal()
        )
        self._pitch += -k * self._pitch + self.pitch_sigma * noise * float(
            self.rng.normal()
        )
        self._pitch = max(-self.max_pitch, min(self.max_pitch, self._pitch))
        return HeadPose(t_ms=0.0, yaw=heading + self._yaw_offset, pitch=self._pitch)


def head_poses_for(trajectory: Trajectory, seed: int) -> List[HeadPose]:
    """A head pose per trajectory sample, anchored to movement heading."""
    model = HeadPoseModel(seed)
    poses = []
    previous_t = None
    for sample in trajectory.samples:
        dt_ms = 16.7 if previous_t is None else sample.t_ms - previous_t
        previous_t = sample.t_ms
        pose = model.step(sample.heading, dt_ms)
        poses.append(HeadPose(t_ms=sample.t_ms, yaw=pose.yaw, pitch=pose.pitch))
    return poses
