"""Frame merging helpers (§5.1 task 5).

The renderer's :func:`repro.render.merge_layers` does the compositing; this
module adapts *decoded* far-BE frames (plain luminance arrays coming out of
the codec, which have no mask/depth) into mergeable layers and measures the
discontinuity between successive far-BE sources — the quantity behind the
user study (Table 10).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..render.rasterizer import Layer, merge_layers
from ..similarity import ssim


def layer_from_decoded(image: np.ndarray) -> Layer:
    """Wrap a decoded far-BE frame as a full-coverage base layer.

    Decoded frames carry no depth information; the near BE and FI layers
    composited on top always win, which matches the hardware path (the
    video frame is a backdrop texture).
    """
    if image.ndim != 2:
        raise ValueError("decoded frame must be a 2D luminance array")
    return Layer(
        image=image.astype(np.float32, copy=False),
        mask=np.ones_like(image, dtype=bool),
        depth=np.full(image.shape, np.inf),
    )


def compose_display(
    far_be: np.ndarray, near_be: Layer, fi: Optional[Layer] = None
) -> np.ndarray:
    """Final displayed frame: decoded far BE + local near BE (+ FI)."""
    base = layer_from_decoded(far_be)
    overlays = [near_be] if fi is None else [near_be, fi]
    return merge_layers(base, *overlays)


def compose_display_into(
    out: np.ndarray, far_be: np.ndarray, near_be: Layer, fi: Optional[Layer] = None
) -> np.ndarray:
    """:func:`compose_display` into a preallocated float32 buffer.

    The batched online loop composes every player's display frame into
    arena-backed buffers; results are bit-identical to
    :func:`compose_display` (same copy-then-masked-overwrite sequence as
    :func:`repro.render.merge_layers`).
    """
    if far_be.ndim != 2:
        raise ValueError("decoded frame must be a 2D luminance array")
    if out.shape != far_be.shape or out.dtype != np.float32:
        raise ValueError("out must be a float32 buffer of the frame shape")
    np.copyto(out, far_be)
    for overlay in (near_be,) if fi is None else (near_be, fi):
        if overlay.image.shape != out.shape:
            raise ValueError("layer shapes differ")
        out[overlay.mask] = overlay.image[overlay.mask]
    return out


def switch_discontinuities(
    far_be_sequence: Sequence[np.ndarray],
) -> List[float]:
    """SSIM at each change of far-BE source along a replay.

    Frame reuse shows the *same* far BE for a run of display frames; the
    perceptible event is the switch to the next fetched frame.  Input is
    the per-display-frame far-BE array (consecutive duplicates allowed by
    identity); output is the SSIM across each identity switch.
    """
    if not far_be_sequence:
        raise ValueError("far_be_sequence must be non-empty")
    values = []
    previous = far_be_sequence[0]
    for current in far_be_sequence[1:]:
        if current is previous:
            continue
        values.append(ssim(previous, current))
        previous = current
    return values
