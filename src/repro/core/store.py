"""Content-addressed on-disk cache for offline preprocessing artifacts.

The §6 offline stage is the dominant wall-clock cost of every
full-fidelity benchmark, and it is fully deterministic: a far-BE panorama
is a pure function of (game spec, RenderConfig, codec parameters, cutoff
radius, viewpoint), and a leaf's dist_thresh is a pure function of those
plus the preprocessing seed.  This module persists both across processes
so repeated benchmark runs warm-start instead of re-rasterizing.

Keying: every entry's filename is the SHA-256 of a canonical JSON document
containing a schema version, the *world key* (game name/scale/seed, render
configuration, codec parameters, eye height) and the entry payload
(viewpoint + cutoff for frames; leaf key + search parameters for values).
Any change to any ingredient — including bumping
:data:`CACHE_SCHEMA_VERSION` when on-disk formats change — produces a
different address, so stale entries are never *read*; they are eventually
evicted by the LRU size cap.  The full key document is echoed inside each
entry and verified on load, so a hash collision or a hand-edited file
degrades to a cache miss, never to wrong data.

Eviction: entries are touched (mtime) on every hit and the store enforces
``max_bytes`` by deleting least-recently-used files after each write.
Writes are atomic (temp file + ``os.replace``) so concurrent preprocessing
workers can share one cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from .. import perf
from ..codec import EncodedFrame

# Bump when the on-disk layout or any upstream semantics change.
CACHE_SCHEMA_VERSION = 1

_FRAME_PREFIX = "f_"
_VALUE_PREFIX = "v_"


def canonical_json(document: Mapping[str, Any]) -> str:
    """Deterministic JSON serialization used for content addressing."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def content_digest(document: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a document's canonical JSON form."""
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStatsSnapshot:
    """Hit/miss/eviction counters for one store instance."""

    hits: int
    misses: int
    evictions: int


class PanoramaDiskCache:
    """Persistent store of pre-rendered panoramas and derived values.

    ``world_key`` pins everything an entry depends on besides its own
    payload: build it with :func:`world_cache_key` so every consumer keys
    identically.
    """

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        world_key: Mapping[str, Any],
        max_bytes: int = 1 << 30,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.world_key = dict(world_key)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def _document(self, namespace: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "world": self.world_key,
            "namespace": namespace,
            "payload": dict(payload),
        }

    def _path(self, prefix: str, document: Mapping[str, Any]) -> Path:
        suffix = ".npz" if prefix == _FRAME_PREFIX else ".json"
        return self.root / f"{prefix}{content_digest(document)}{suffix}"

    # ------------------------------------------------------------------
    # Panoramic frames
    # ------------------------------------------------------------------

    @staticmethod
    def frame_payload(
        viewpoint: Tuple[float, float], cutoff: Optional[float], kind: str
    ) -> Dict[str, Any]:
        return {
            "viewpoint": [float(viewpoint[0]), float(viewpoint[1])],
            "cutoff": None if cutoff is None else float(cutoff),
            "kind": kind,
        }

    def load_frame(
        self, viewpoint: Tuple[float, float], cutoff: Optional[float], kind: str
    ) -> Optional[Tuple[np.ndarray, EncodedFrame]]:
        """The cached (raw image, encoded frame) pair, or None on miss."""
        document = self._document("frame", self.frame_payload(viewpoint, cutoff, kind))
        path = self._path(_FRAME_PREFIX, document)
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(archive["meta"]))
                if meta.get("key") != document:
                    raise ValueError("cache key mismatch")
                image = archive["image"]
                data = archive["data"].tobytes()
        except FileNotFoundError:
            self._miss()
            return None
        except Exception:
            # Truncated/stale/corrupt entry: degrade to a miss and drop it.
            self._discard(path)
            self._miss()
            return None
        self._touch(path)
        self._hit()
        encoded = EncodedFrame(
            data=data,
            width=int(meta["width"]),
            height=int(meta["height"]),
            crf=float(meta["crf"]),
            is_keyframe=bool(meta["is_keyframe"]),
        )
        return image, encoded

    def store_frame(
        self,
        viewpoint: Tuple[float, float],
        cutoff: Optional[float],
        kind: str,
        image: np.ndarray,
        encoded: EncodedFrame,
    ) -> None:
        """Persist a rendered frame atomically, then enforce the size cap."""
        document = self._document("frame", self.frame_payload(viewpoint, cutoff, kind))
        path = self._path(_FRAME_PREFIX, document)
        meta = {
            "key": document,
            "width": encoded.width,
            "height": encoded.height,
            "crf": encoded.crf,
            "is_keyframe": encoded.is_keyframe,
        }
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    image=np.asarray(image, dtype=np.float32),
                    data=np.frombuffer(encoded.data, dtype=np.uint8),
                    meta=np.array(json.dumps(meta)),
                )
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                self._discard(tmp)
        self._enforce_cap()

    # ------------------------------------------------------------------
    # Small derived values (dist-thresh, size models)
    # ------------------------------------------------------------------

    def load_value(self, namespace: str, payload: Mapping[str, Any]) -> Optional[Any]:
        """A cached JSON-serializable value, or None on miss."""
        document = self._document(namespace, payload)
        path = self._path(_VALUE_PREFIX, document)
        try:
            entry = json.loads(path.read_text())
            if entry.get("key") != document:
                raise ValueError("cache key mismatch")
        except FileNotFoundError:
            self._miss()
            return None
        except Exception:
            self._discard(path)
            self._miss()
            return None
        self._touch(path)
        self._hit()
        return entry["value"]

    def store_value(
        self, namespace: str, payload: Mapping[str, Any], value: Any
    ) -> None:
        """Persist a JSON-serializable value atomically."""
        document = self._document(namespace, payload)
        path = self._path(_VALUE_PREFIX, document)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps({"key": document, "value": value}))
        os.replace(tmp, path)
        self._enforce_cap()

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def stats(self) -> CacheStatsSnapshot:
        """This instance's hit/miss/eviction counts."""
        return CacheStatsSnapshot(self.hits, self.misses, self.evictions)

    def size_bytes(self) -> int:
        """Total bytes currently stored under the cache root."""
        return sum(
            entry.stat().st_size
            for entry in self.root.iterdir()
            if entry.is_file() and not entry.name.startswith(".")
        )

    def entry_count(self) -> int:
        """Number of cache entries (frames plus values) on disk."""
        return sum(
            1
            for entry in self.root.iterdir()
            if entry.suffix in (".npz", ".json") and entry.is_file()
        )

    def _enforce_cap(self) -> None:
        """Evict least-recently-used entries until under ``max_bytes``."""
        entries = []
        total = 0
        for entry in self.root.iterdir():
            if not entry.is_file() or entry.suffix not in (".npz", ".json"):
                continue
            try:
                stat = entry.stat()
            except FileNotFoundError:
                continue  # concurrent eviction by another worker
            entries.append((stat.st_mtime, stat.st_size, entry))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        entries.sort()  # oldest mtime first
        for _, size, entry in entries:
            if total <= self.max_bytes:
                break
            self._discard(entry)
            self.evictions += 1
            perf.count("panorama_store.evictions")
            total -= size

    def _touch(self, path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _hit(self) -> None:
        self.hits += 1
        perf.count("panorama_store.hits")

    def _miss(self) -> None:
        self.misses += 1
        perf.count("panorama_store.misses")


def world_cache_key(
    game: str,
    scale: float,
    seed: int,
    render_config,
    crf: float,
    eye_height: float,
) -> Dict[str, Any]:
    """The shared key ingredients for one game's preprocessing artifacts.

    ``render_config`` is flattened field-by-field so any rendering knob
    change invalidates the cache; game identity is by (name, scale) because
    world construction is deterministic in them.  The ``kernels`` execution
    mode is excluded: every kernel path produces bit-identical frames (the
    test suite pins this), so scalar and vector runs share cache entries.
    """
    from dataclasses import asdict

    return {
        "game": game,
        "scale": float(scale),
        "seed": int(seed),
        "render_config": {
            key: (float(value) if isinstance(value, (int, float)) and not isinstance(value, bool) else value)
            for key, value in asdict(render_config).items()
            if key != "kernels"
        },
        "crf": float(crf),
        "eye_height": float(eye_height),
    }
