"""Offline preprocessing (§6) and the server-side panorama store.

The Coterie server's offline stage: run the adaptive cutoff scheme, derive
per-leaf distance thresholds, and pre-render + pre-encode panoramic far-BE
frames for reachable grid points.  Pre-rendering *every* grid point up
front is exactly what the paper does on a GPU server overnight; on this
substrate :class:`PanoramaStore` materializes frames on first request and
memoizes them, producing identical serving behaviour with bounded compute.

For experiments that only need frame *sizes* (FPS/scalability/network
tables — the cache outcome "is determined by the frame locations", §4.6),
the store supports an emulated mode backed by a calibrated
:class:`FrameSizeModel`, skipping rasterization entirely.

Performance layer (this module's driver plus ``repro.perf`` and
``repro.core.store``): :func:`preprocess_game` accepts
:class:`PreprocessOptions` selecting a worker count and a persistent
cache directory.  With ``workers > 1`` the per-leaf dist-thresh searches
and grid-point panorama render/encode jobs fan out over a
``ProcessPoolExecutor`` in fixed-size chunks; chunks are created in a
deterministic order and futures are consumed in submission order, and
every per-item computation is a pure function of its task tuple, so the
merged output is bit-identical to a serial run.  With ``cache_dir`` set,
results additionally persist in a content-addressed
:class:`~repro.core.store.PanoramaDiskCache` so repeated runs warm-start.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing

import numpy as np

from .. import perf
from ..codec import DirtyBlockCodec, EncodedFrame, FrameCodec
from ..geometry import GridPoint, Vec2
from ..render.rasterizer import Layer, RenderConfig
from ..render.splitter import eye_at, render_far_be, render_whole_be
from ..render.timing import RenderCostModel
from ..world.games import GameWorld
from .constraint import RenderBudget, measure_fi_budget
from .cutoff import CutoffMap, CutoffSchemeConfig, LeafKey, build_cutoff_map, leaf_key
from .dist_thresh import DistThreshMap, dist_thresh_payload, leaf_threshold
from .store import PanoramaDiskCache, content_digest, world_cache_key


@dataclass(frozen=True)
class StoredFrame:
    """A served panoramic frame: payload (optional) plus wire size."""

    encoded: Optional[EncodedFrame]
    decoded: Optional[np.ndarray]
    wire_bytes: int
    viewpoint: Vec2


@dataclass(frozen=True)
class FrameSizeModel:
    """Calibrated wire-size distribution for one game's panoramas."""

    mean_bytes: float
    std_bytes: float

    def __post_init__(self) -> None:
        if self.mean_bytes <= 0 or self.std_bytes < 0:
            raise ValueError("invalid size model")

    def sample(self, grid_point: GridPoint) -> int:
        """Deterministic per-grid-point size draw (hash-seeded)."""
        seed = (hash(grid_point) ^ 0x5EED) & 0x7FFFFFFF
        rng = np.random.default_rng(seed)
        size = rng.normal(self.mean_bytes, self.std_bytes)
        return int(max(1000.0, size))


class PanoramaStore:
    """Server store of pre-rendered, pre-encoded panoramic frames.

    ``kind`` selects far-BE frames (Coterie, clipped at the viewpoint's
    cutoff radius) or whole-BE frames (Furion).  With ``render_frames``
    False, a :class:`FrameSizeModel` must be supplied and only sizes are
    served.  With ``disk_cache`` set, rendered+encoded frames persist
    across processes; a disk hit reuses the stored bytes and re-decodes
    them, which is bit-identical to the render path because decoding is a
    pure function of the encoded payload.
    """

    def __init__(
        self,
        world: GameWorld,
        config: RenderConfig,
        codec: FrameCodec,
        cutoff_map: Optional[CutoffMap] = None,
        kind: str = "far",
        eye_height: float = 1.7,
        render_frames: bool = True,
        size_model: Optional[FrameSizeModel] = None,
        max_cached_frames: int = 4096,
        disk_cache: Optional[PanoramaDiskCache] = None,
    ) -> None:
        if kind not in ("far", "whole"):
            raise ValueError("kind must be 'far' or 'whole'")
        if kind == "far" and cutoff_map is None:
            raise ValueError("far-BE store requires a cutoff map")
        if not render_frames and size_model is None:
            raise ValueError("emulated store requires a size model")
        if max_cached_frames < 1:
            raise ValueError("max_cached_frames must be >= 1")
        self.world = world
        self.config = config
        self.codec = codec
        self.cutoff_map = cutoff_map
        self.kind = kind
        self.eye_height = eye_height
        self.render_frames = render_frames
        self.size_model = size_model
        self.max_cached_frames = max_cached_frames
        self.disk_cache = disk_cache
        self._memo: Dict[GridPoint, StoredFrame] = {}
        self.renders = 0
        # Under "vector+reuse" kernels, encode through the dirty-block
        # coder: panoramas rendered behind the same cutoff share their
        # pose-invariant blocks (sky, clipped bands) and skip their
        # DCT/quant work.  Output bytes are bit-identical either way.
        self._encoder: Optional[DirtyBlockCodec] = None
        if render_frames and config.reuse_enabled:
            self._encoder = DirtyBlockCodec(codec)

    @property
    def reuse_dirty_map(self) -> Optional[np.ndarray]:
        """Dirty-block map of the latest reuse encode (None without reuse)."""
        return None if self._encoder is None else self._encoder.last_dirty

    @property
    def memo_entries(self) -> int:
        """Frames currently memoized in memory (metrics occupancy probe)."""
        return len(self._memo)

    def frame_for(self, grid_point: GridPoint) -> StoredFrame:
        """The stored frame for a grid point (memoized)."""
        cached = self._memo.get(grid_point)
        if cached is not None:
            return cached
        viewpoint = self.world.grid.to_world(grid_point)
        if not self.render_frames:
            assert self.size_model is not None
            frame = StoredFrame(
                encoded=None,
                decoded=None,
                wire_bytes=self.size_model.sample(grid_point),
                viewpoint=viewpoint,
            )
        else:
            cutoff = None
            if self.kind == "far":
                assert self.cutoff_map is not None
                cutoff = self.cutoff_map.cutoff_for(viewpoint)
            encoded = decoded = None
            if self.disk_cache is not None:
                hit = self.disk_cache.load_frame(
                    (viewpoint.x, viewpoint.y), cutoff, self.kind
                )
                if hit is not None:
                    _, encoded = hit
                    decoded = self.codec.decode(encoded)
            if encoded is None:
                layer = self._render(viewpoint, cutoff)
                if self._encoder is not None:
                    encoded = self._encoder.encode(
                        layer.image, key=(self.kind, cutoff)
                    )
                else:
                    encoded = self.codec.encode(layer.image)
                decoded = self.codec.decode(encoded)
                self.renders += 1
                perf.count("panorama.renders")
                if self.disk_cache is not None:
                    self.disk_cache.store_frame(
                        (viewpoint.x, viewpoint.y),
                        cutoff,
                        self.kind,
                        decoded,
                        encoded,
                    )
            frame = StoredFrame(
                encoded=encoded,
                decoded=decoded,
                wire_bytes=encoded.wire_bytes(),
                viewpoint=viewpoint,
            )
        if len(self._memo) >= self.max_cached_frames:
            self._memo.pop(next(iter(self._memo)))
        self._memo[grid_point] = frame
        return frame

    def _render(self, viewpoint: Vec2, cutoff: Optional[float] = None) -> Layer:
        eye = eye_at(self.world.scene, viewpoint, self.eye_height)
        if self.kind == "whole":
            return render_whole_be(self.world.scene, eye, self.config)
        if cutoff is None:
            assert self.cutoff_map is not None
            cutoff = self.cutoff_map.cutoff_for(viewpoint)
        return render_far_be(self.world.scene, eye, self.config, cutoff)


def _cutoff_fingerprint(cutoff_map: CutoffMap) -> str:
    """Content digest of the cutoff quadtree's leaves.

    Used to key artifacts that depend on the whole map (far-BE size
    models), not just one leaf's cutoff.
    """
    leaves = sorted(
        (leaf_key(leaf.region), leaf.payload.cutoff_radius)
        for leaf in cutoff_map.tree.leaves()
    )
    return content_digest(
        {"leaves": [[*key, radius] for key, radius in leaves]}
    )


def calibrate_size_model(
    world: GameWorld,
    config: RenderConfig,
    codec: FrameCodec,
    cutoff_map: Optional[CutoffMap],
    kind: str = "far",
    samples: int = 8,
    seed: int = 0,
    eye_height: float = 1.7,
    disk: Optional[PanoramaDiskCache] = None,
) -> FrameSizeModel:
    """Measure real encoded sizes at sampled viewpoints and fit a model."""
    if samples < 2:
        raise ValueError("samples must be >= 2")
    payload = None
    if disk is not None:
        payload = {
            "kind": kind,
            "samples": samples,
            "seed": seed,
            "cutoffs": None if cutoff_map is None else _cutoff_fingerprint(cutoff_map),
        }
        stored = disk.load_value("size_model", payload)
        if stored is not None:
            return FrameSizeModel(
                mean_bytes=float(stored["mean"]), std_bytes=float(stored["std"])
            )
    with perf.timed("size_model"):
        rng = np.random.default_rng(seed)
        encoder = DirtyBlockCodec(codec) if config.reuse_enabled else None
        sizes = []
        attempts = 0
        while len(sizes) < samples and attempts < samples * 20:
            attempts += 1
            if world.track is not None:
                # Track games: uniform rejection sampling would almost never
                # land on the thin reachable band — sample along the arc.
                arc = float(rng.uniform(0.0, world.track.length()))
                point = world.track.point_at(arc)
            else:
                point = world.bounds.sample(rng, 1)[0]
            if not world.grid.is_reachable(world.grid.snap(point)):
                continue
            eye = eye_at(world.scene, point, eye_height)
            cutoff = None
            if kind == "whole":
                layer = render_whole_be(world.scene, eye, config)
            else:
                assert cutoff_map is not None
                cutoff = cutoff_map.cutoff_for(point)
                layer = render_far_be(world.scene, eye, config, cutoff)
            if encoder is not None:
                encoded = encoder.encode(layer.image, key=(kind, cutoff))
            else:
                encoded = codec.encode(layer.image)
            sizes.append(encoded.wire_bytes())
        if len(sizes) < 2:
            raise RuntimeError("could not sample enough reachable viewpoints")
    model = FrameSizeModel(
        mean_bytes=float(np.mean(sizes)), std_bytes=float(np.std(sizes))
    )
    if disk is not None and payload is not None:
        disk.store_value(
            "size_model",
            payload,
            {"mean": model.mean_bytes, "std": model.std_bytes},
        )
    return model


@dataclass(frozen=True)
class PreprocessOptions:
    """Execution knobs for :func:`preprocess_game`.

    Defaults reproduce the historical serial, in-memory-only behaviour.
    ``workers > 1`` fans eager stages across processes; ``cache_dir``
    persists artifacts on disk; ``eager_dist_thresh`` precomputes every
    leaf's threshold up front (otherwise they stay lazy);
    ``panorama_grid_points`` pre-renders those far-BE panoramas into the
    disk cache (requires ``cache_dir``).
    """

    workers: int = 1
    cache_dir: Optional[str] = None
    cache_max_bytes: int = 1 << 30
    eager_dist_thresh: bool = False
    panorama_grid_points: Optional[Sequence[GridPoint]] = None
    chunk_size: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.panorama_grid_points is not None and self.cache_dir is None:
            raise ValueError(
                "eager panorama rendering requires cache_dir (frames are "
                "exchanged through the disk store, not pickled)"
            )


@dataclass
class OfflineArtifacts:
    """Everything §6's offline preprocessing produces for one game."""

    budget: RenderBudget
    cutoff_map: CutoffMap
    dist_thresh_map: DistThreshMap
    far_size_model: FrameSizeModel
    whole_size_model: FrameSizeModel
    disk_cache: Optional[PanoramaDiskCache] = None


# ----------------------------------------------------------------------
# Parallel driver plumbing.
#
# Workers are initialised once per process with everything needed to
# rebuild the (deterministic) world; tasks are small picklable tuples and
# every per-task computation is a pure function of its tuple, so results
# do not depend on which worker ran them or in what order.
# ----------------------------------------------------------------------

_WORKER: Dict[str, object] = {}


def _init_worker(
    game_name: str,
    scale: float,
    render_config: RenderConfig,
    crf: float,
    seed: int,
    k_samples: int,
    eye_height: float,
    cache_dir: Optional[str],
    cache_max_bytes: int,
    world_key: Optional[Dict[str, object]],
) -> None:
    from ..world.games import load_game

    _WORKER["world"] = load_game(game_name, scale)
    _WORKER["config"] = render_config
    _WORKER["codec"] = FrameCodec(crf)
    _WORKER["encoder"] = (
        DirtyBlockCodec(_WORKER["codec"]) if render_config.reuse_enabled else None
    )
    _WORKER["seed"] = seed
    _WORKER["k_samples"] = k_samples
    _WORKER["eye_height"] = eye_height
    _WORKER["disk"] = (
        PanoramaDiskCache(cache_dir, world_key, cache_max_bytes)
        if cache_dir is not None and world_key is not None
        else None
    )


def _compute_leaf(task: Tuple[LeafKey, float]) -> Tuple[LeafKey, float]:
    key, cutoff = task
    world: GameWorld = _WORKER["world"]  # type: ignore[assignment]
    value = leaf_threshold(
        world.scene,
        _WORKER["config"],  # type: ignore[arg-type]
        key,
        cutoff,
        seed=_WORKER["seed"],  # type: ignore[arg-type]
        k_samples=_WORKER["k_samples"],  # type: ignore[arg-type]
        eye_height=_WORKER["eye_height"],  # type: ignore[arg-type]
    )
    return key, value


def _render_panorama(task: Tuple[GridPoint, float]) -> Tuple[GridPoint, bool]:
    """Render/encode one grid point's far-BE panorama into the disk store.

    Returns (grid point, whether a render actually happened).
    """
    grid_point, cutoff = task
    world: GameWorld = _WORKER["world"]  # type: ignore[assignment]
    config: RenderConfig = _WORKER["config"]  # type: ignore[assignment]
    codec: FrameCodec = _WORKER["codec"]  # type: ignore[assignment]
    encoder = _WORKER.get("encoder")
    disk: PanoramaDiskCache = _WORKER["disk"]  # type: ignore[assignment]
    eye_height: float = _WORKER["eye_height"]  # type: ignore[assignment]
    viewpoint = world.grid.to_world(grid_point)
    key = (viewpoint.x, viewpoint.y)
    if disk.load_frame(key, cutoff, "far") is not None:
        return grid_point, False
    with perf.timed("panorama"):
        eye = eye_at(world.scene, viewpoint, eye_height)
        layer = render_far_be(world.scene, eye, config, cutoff)
        if encoder is not None:
            encoded = encoder.encode(layer.image, key=("far", cutoff))
        else:
            encoded = codec.encode(layer.image)
        decoded = codec.decode(encoded)
    disk.store_frame(key, cutoff, "far", decoded, encoded)
    perf.count("panorama.renders")
    return grid_point, True


def _dist_chunk(chunk: List[Tuple[LeafKey, float]]):
    perf.reset()
    results = [_compute_leaf(task) for task in chunk]
    return results, perf.snapshot()


def _pano_chunk(chunk: List[Tuple[GridPoint, float]]):
    perf.reset()
    results = [_render_panorama(task) for task in chunk]
    return results, perf.snapshot()


def _chunked(tasks: List, size: int) -> List[List]:
    return [tasks[i : i + size] for i in range(0, len(tasks), size)]


def _pool_context():
    """Prefer fork (instant worker start, inherited world cache)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else methods[0])


def _fan_out(chunk_fn, tasks, options: PreprocessOptions, init_args) -> List:
    """Run per-task computations, serially or across workers.

    Parallel results are merged in chunk-submission order; combined with
    per-task purity this makes the merged list independent of scheduling.
    Worker perf snapshots are folded into the parent registry.
    """
    if not tasks:
        return []
    if options.workers == 1:
        # Same per-task functions, run inline: no snapshot/reset games with
        # the parent's perf registry, and trivially the reference ordering.
        _init_worker(*init_args)
        task_fn = _compute_leaf if chunk_fn is _dist_chunk else _render_panorama
        return [task_fn(task) for task in tasks]
    merged: List = []
    with ProcessPoolExecutor(
        max_workers=options.workers,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=tuple(init_args),
    ) as pool:
        futures = [
            pool.submit(chunk_fn, chunk)
            for chunk in _chunked(tasks, options.chunk_size)
        ]
        for future in futures:  # submission order, not completion order
            results, snapshot = future.result()
            merged.extend(results)
            perf.merge(snapshot)
    return merged


def preprocess_game(
    world: GameWorld,
    cost_model: RenderCostModel,
    render_config: RenderConfig,
    codec: FrameCodec,
    seed: int = 0,
    cutoff_config: Optional[CutoffSchemeConfig] = None,
    size_samples: int = 8,
    options: Optional[PreprocessOptions] = None,
) -> OfflineArtifacts:
    """Run the full offline pipeline for a game (§6 steps 1-2).

    Determines the FI budget, builds the adaptive cutoff quadtree, prepares
    the dist-thresh map, and calibrates far/whole frame-size models.  See
    :class:`PreprocessOptions` for parallel execution and disk caching;
    the default options reproduce the historical serial behaviour exactly.
    """
    opts = options if options is not None else PreprocessOptions()
    eye_height = world.spec.player.eye_height
    with perf.timed("preprocess"):
        budget = measure_fi_budget(cost_model, world.spec.fi_triangles)
        reachable = None
        if world.track is not None:
            reachable = lambda p: world.grid.is_reachable(world.grid.snap(p))
        cutoff_map = build_cutoff_map(
            world.scene,
            cost_model,
            budget,
            config=cutoff_config,
            seed=seed,
            reachable=reachable,
        )
        disk = None
        if opts.cache_dir is not None:
            disk = PanoramaDiskCache(
                opts.cache_dir,
                world_cache_key(
                    world.name,
                    world.scale,
                    seed,
                    render_config,
                    codec.crf,
                    eye_height,
                ),
                max_bytes=opts.cache_max_bytes,
            )
        dist_map = DistThreshMap(
            scene=world.scene,
            config=render_config,
            cutoff_map=cutoff_map,
            seed=seed,
            eye_height=eye_height,
            disk=disk,
        )
        init_args = (
            world.name,
            world.scale,
            render_config,
            codec.crf,
            seed,
            dist_map.k_samples,
            eye_height,
            opts.cache_dir,
            opts.cache_max_bytes,
            None if disk is None else disk.world_key,
        )
        if opts.eager_dist_thresh:
            tasks = sorted(
                (leaf_key(leaf.region), leaf.payload.cutoff_radius)
                for leaf in cutoff_map.tree.leaves()
            )
            computed: Dict[LeafKey, float] = {}
            pending: List[Tuple[LeafKey, float]] = []
            for key, cutoff in tasks:
                if disk is not None:
                    stored = disk.load_value(
                        "dist_thresh",
                        dist_thresh_payload(
                            key, cutoff, dist_map.k_samples, seed
                        ),
                    )
                    if stored is not None:
                        computed[key] = float(stored)
                        continue
                pending.append((key, cutoff))
            cutoffs = dict(tasks)
            for key, value in _fan_out(_dist_chunk, pending, opts, init_args):
                computed[key] = value
                if disk is not None:
                    disk.store_value(
                        "dist_thresh",
                        dist_thresh_payload(
                            key, cutoffs[key], dist_map.k_samples, seed
                        ),
                        value,
                    )
            dist_map.preload(computed)
        if opts.panorama_grid_points is not None:
            pano_tasks = [
                (
                    grid_point,
                    cutoff_map.cutoff_for(world.grid.to_world(grid_point)),
                )
                for grid_point in opts.panorama_grid_points
            ]
            rendered = sum(
                1
                for _, did_render in _fan_out(
                    _pano_chunk, pano_tasks, opts, init_args
                )
                if did_render
            )
            perf.count("preprocess.panoramas_rendered", rendered)
        far_sizes = calibrate_size_model(
            world, render_config, codec, cutoff_map, kind="far",
            samples=size_samples, seed=seed + 1,
            eye_height=eye_height, disk=disk,
        )
        whole_sizes = calibrate_size_model(
            world, render_config, codec, None, kind="whole",
            samples=size_samples, seed=seed + 2,
            eye_height=eye_height, disk=disk,
        )
    return OfflineArtifacts(
        budget=budget,
        cutoff_map=cutoff_map,
        dist_thresh_map=dist_map,
        far_size_model=far_sizes,
        whole_size_model=whole_sizes,
        disk_cache=disk,
    )
