"""Offline preprocessing (§6) and the server-side panorama store.

The Coterie server's offline stage: run the adaptive cutoff scheme, derive
per-leaf distance thresholds, and pre-render + pre-encode panoramic far-BE
frames for reachable grid points.  Pre-rendering *every* grid point up
front is exactly what the paper does on a GPU server overnight; on this
substrate :class:`PanoramaStore` materializes frames on first request and
memoizes them, producing identical serving behaviour with bounded compute.

For experiments that only need frame *sizes* (FPS/scalability/network
tables — the cache outcome "is determined by the frame locations", §4.6),
the store supports an emulated mode backed by a calibrated
:class:`FrameSizeModel`, skipping rasterization entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..codec import EncodedFrame, FrameCodec
from ..geometry import GridPoint, Vec2
from ..render.rasterizer import Layer, RenderConfig
from ..render.splitter import eye_at, render_far_be, render_whole_be
from ..render.timing import RenderCostModel
from ..world.games import GameWorld
from .constraint import RenderBudget, measure_fi_budget
from .cutoff import CutoffMap, CutoffSchemeConfig, build_cutoff_map
from .dist_thresh import DistThreshMap


@dataclass(frozen=True)
class StoredFrame:
    """A served panoramic frame: payload (optional) plus wire size."""

    encoded: Optional[EncodedFrame]
    decoded: Optional[np.ndarray]
    wire_bytes: int
    viewpoint: Vec2


@dataclass(frozen=True)
class FrameSizeModel:
    """Calibrated wire-size distribution for one game's panoramas."""

    mean_bytes: float
    std_bytes: float

    def __post_init__(self) -> None:
        if self.mean_bytes <= 0 or self.std_bytes < 0:
            raise ValueError("invalid size model")

    def sample(self, grid_point: GridPoint) -> int:
        """Deterministic per-grid-point size draw (hash-seeded)."""
        seed = (hash(grid_point) ^ 0x5EED) & 0x7FFFFFFF
        rng = np.random.default_rng(seed)
        size = rng.normal(self.mean_bytes, self.std_bytes)
        return int(max(1000.0, size))


class PanoramaStore:
    """Server store of pre-rendered, pre-encoded panoramic frames.

    ``kind`` selects far-BE frames (Coterie, clipped at the viewpoint's
    cutoff radius) or whole-BE frames (Furion).  With ``render_frames``
    False, a :class:`FrameSizeModel` must be supplied and only sizes are
    served.
    """

    def __init__(
        self,
        world: GameWorld,
        config: RenderConfig,
        codec: FrameCodec,
        cutoff_map: Optional[CutoffMap] = None,
        kind: str = "far",
        eye_height: float = 1.7,
        render_frames: bool = True,
        size_model: Optional[FrameSizeModel] = None,
        max_cached_frames: int = 4096,
    ) -> None:
        if kind not in ("far", "whole"):
            raise ValueError("kind must be 'far' or 'whole'")
        if kind == "far" and cutoff_map is None:
            raise ValueError("far-BE store requires a cutoff map")
        if not render_frames and size_model is None:
            raise ValueError("emulated store requires a size model")
        if max_cached_frames < 1:
            raise ValueError("max_cached_frames must be >= 1")
        self.world = world
        self.config = config
        self.codec = codec
        self.cutoff_map = cutoff_map
        self.kind = kind
        self.eye_height = eye_height
        self.render_frames = render_frames
        self.size_model = size_model
        self.max_cached_frames = max_cached_frames
        self._memo: Dict[GridPoint, StoredFrame] = {}
        self.renders = 0

    def frame_for(self, grid_point: GridPoint) -> StoredFrame:
        """The stored frame for a grid point (memoized)."""
        cached = self._memo.get(grid_point)
        if cached is not None:
            return cached
        viewpoint = self.world.grid.to_world(grid_point)
        if not self.render_frames:
            assert self.size_model is not None
            frame = StoredFrame(
                encoded=None,
                decoded=None,
                wire_bytes=self.size_model.sample(grid_point),
                viewpoint=viewpoint,
            )
        else:
            layer = self._render(viewpoint)
            encoded = self.codec.encode(layer.image)
            decoded = self.codec.decode(encoded)
            frame = StoredFrame(
                encoded=encoded,
                decoded=decoded,
                wire_bytes=encoded.wire_bytes(),
                viewpoint=viewpoint,
            )
            self.renders += 1
        if len(self._memo) >= self.max_cached_frames:
            self._memo.pop(next(iter(self._memo)))
        self._memo[grid_point] = frame
        return frame

    def _render(self, viewpoint: Vec2) -> Layer:
        eye = eye_at(self.world.scene, viewpoint, self.eye_height)
        if self.kind == "whole":
            return render_whole_be(self.world.scene, eye, self.config)
        assert self.cutoff_map is not None
        cutoff = self.cutoff_map.cutoff_for(viewpoint)
        return render_far_be(self.world.scene, eye, self.config, cutoff)


def calibrate_size_model(
    world: GameWorld,
    config: RenderConfig,
    codec: FrameCodec,
    cutoff_map: Optional[CutoffMap],
    kind: str = "far",
    samples: int = 8,
    seed: int = 0,
    eye_height: float = 1.7,
) -> FrameSizeModel:
    """Measure real encoded sizes at sampled viewpoints and fit a model."""
    if samples < 2:
        raise ValueError("samples must be >= 2")
    rng = np.random.default_rng(seed)
    sizes = []
    attempts = 0
    while len(sizes) < samples and attempts < samples * 20:
        attempts += 1
        if world.track is not None:
            # Track games: uniform rejection sampling would almost never
            # land on the thin reachable band — sample along the arc.
            arc = float(rng.uniform(0.0, world.track.length()))
            point = world.track.point_at(arc)
        else:
            point = world.bounds.sample(rng, 1)[0]
        if not world.grid.is_reachable(world.grid.snap(point)):
            continue
        eye = eye_at(world.scene, point, eye_height)
        if kind == "whole":
            layer = render_whole_be(world.scene, eye, config)
        else:
            assert cutoff_map is not None
            layer = render_far_be(
                world.scene, eye, config, cutoff_map.cutoff_for(point)
            )
        sizes.append(codec.encode(layer.image).wire_bytes())
    if len(sizes) < 2:
        raise RuntimeError("could not sample enough reachable viewpoints")
    return FrameSizeModel(
        mean_bytes=float(np.mean(sizes)), std_bytes=float(np.std(sizes))
    )


@dataclass
class OfflineArtifacts:
    """Everything §6's offline preprocessing produces for one game."""

    budget: RenderBudget
    cutoff_map: CutoffMap
    dist_thresh_map: DistThreshMap
    far_size_model: FrameSizeModel
    whole_size_model: FrameSizeModel


def preprocess_game(
    world: GameWorld,
    cost_model: RenderCostModel,
    render_config: RenderConfig,
    codec: FrameCodec,
    seed: int = 0,
    cutoff_config: Optional[CutoffSchemeConfig] = None,
    size_samples: int = 8,
) -> OfflineArtifacts:
    """Run the full offline pipeline for a game (§6 steps 1-2).

    Determines the FI budget, builds the adaptive cutoff quadtree, prepares
    the lazy dist-thresh map, and calibrates far/whole frame-size models.
    """
    budget = measure_fi_budget(cost_model, world.spec.fi_triangles)
    reachable = None
    if world.track is not None:
        reachable = lambda p: world.grid.is_reachable(world.grid.snap(p))
    cutoff_map = build_cutoff_map(
        world.scene,
        cost_model,
        budget,
        config=cutoff_config,
        seed=seed,
        reachable=reachable,
    )
    dist_map = DistThreshMap(
        scene=world.scene,
        config=render_config,
        cutoff_map=cutoff_map,
        seed=seed,
        eye_height=world.spec.player.eye_height,
    )
    far_sizes = calibrate_size_model(
        world, render_config, codec, cutoff_map, kind="far",
        samples=size_samples, seed=seed + 1,
        eye_height=world.spec.player.eye_height,
    )
    whole_sizes = calibrate_size_model(
        world, render_config, codec, None, kind="whole",
        samples=size_samples, seed=seed + 2,
        eye_height=world.spec.player.eye_height,
    )
    return OfflineArtifacts(
        budget=budget,
        cutoff_map=cutoff_map,
        dist_thresh_map=dist_map,
        far_size_model=far_sizes,
        whole_size_model=whole_sizes,
    )
