"""Constraints 1 and 2: the budgets that bound the offline cutoff choice.

Constraint 1 — the mobile device must render FI plus near BE inside the
60 FPS frame budget (§4.3):

    RT_FI + RT_nearBE < 16.7 ms

RT_FI is measured per app/device from recorded game play and bounded
conservatively (the paper measures "well below 4 ms" on Pixel 2 and uses
4 ms, leaving 12.7 ms for near BE).

Constraint 2 — the aggregate traffic of all co-present players must fit
the shared wireless medium (§4.2-4.3, Table 9): the per-player far-BE
fetch streams plus the FI sync fanout may not exceed the link's usable
capacity.  The offline dist-thresh check evaluates it for a fixed party;
:func:`satisfies_bandwidth_constraint` is the online form the session
supervisor re-validates on every membership change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..geometry import Vec2
from ..render.timing import RenderCostModel
from ..world.scene import Scene

FRAME_BUDGET_MS = 16.7
# The paper's conservative FI bound on Pixel 2.
PAPER_FI_BOUND_MS = 4.0


@dataclass(frozen=True)
class RenderBudget:
    """The per-frame budget split between FI and near BE.

    ``headroom`` keeps a slice of the near-BE budget unspent: the paper's
    strict inequality plus on-device measurement variance effectively
    leaves pipeline slack (their Coterie GPU sits near 55-65 %, not pinned
    at the budget), which we make explicit.
    """

    frame_budget_ms: float = FRAME_BUDGET_MS
    fi_ms: float = PAPER_FI_BOUND_MS
    headroom: float = 0.85

    def __post_init__(self) -> None:
        if self.frame_budget_ms <= 0:
            raise ValueError("frame_budget_ms must be positive")
        if not 0 <= self.fi_ms < self.frame_budget_ms:
            raise ValueError(
                f"fi_ms {self.fi_ms} must be in [0, {self.frame_budget_ms})"
            )
        if not 0 < self.headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")

    @property
    def near_be_budget_ms(self) -> float:
        """Time available for near BE (Eq. 1: 16.7 - RT_FI, with headroom)."""
        return (self.frame_budget_ms - self.fi_ms) * self.headroom


def measure_fi_budget(
    model: RenderCostModel,
    fi_triangles: float,
    safety_factor: float = 1.3,
    conservative_floor_ms: float = PAPER_FI_BOUND_MS,
) -> RenderBudget:
    """Derive the budget from an FI render-time measurement.

    Mirrors the paper's installation-time procedure: replay recorded FI and
    take a conservative upper bound — the paper measures "well below 4 ms"
    on Pixel 2 yet still budgets the full 4 ms, so the bound never drops
    below ``conservative_floor_ms`` even when the measurement is lower.
    """
    if safety_factor < 1.0:
        raise ValueError("safety_factor must be >= 1")
    measured = model.fi_ms(fi_triangles)
    fi_bound = max(measured * safety_factor, conservative_floor_ms)
    if fi_bound >= FRAME_BUDGET_MS:
        raise ValueError(
            f"FI render time {measured:.1f} ms leaves no near-BE budget"
        )
    return RenderBudget(fi_ms=fi_bound)


def satisfies_constraint(
    model: RenderCostModel,
    scene: Scene,
    viewpoint: Vec2,
    cutoff_radius: float,
    budget: RenderBudget,
) -> bool:
    """Whether rendering near BE at ``cutoff_radius`` fits the budget."""
    if cutoff_radius < 0:
        raise ValueError("cutoff_radius must be non-negative")
    return model.near_be_ms(scene, viewpoint, cutoff_radius) < budget.near_be_budget_ms


@dataclass(frozen=True)
class BandwidthBudget:
    """Constraint 2's capacity bound for one shared wireless medium.

    ``utilization_bound`` keeps a slice of the nominal capacity unspent,
    the network analogue of :class:`RenderBudget.headroom`: 802.11ac
    never sustains its nominal rate under contention, and admission that
    fills the medium to 100 % would push every admitted player past the
    frame budget the moment jitter strikes.
    """

    capacity_mbps: float
    utilization_bound: float = 0.8

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise ValueError("capacity_mbps must be positive")
        if not 0 < self.utilization_bound <= 1.0:
            raise ValueError("utilization_bound must be in (0, 1]")

    @property
    def usable_mbps(self) -> float:
        """Capacity actually available to BE + FI traffic."""
        return self.capacity_mbps * self.utilization_bound


def satisfies_bandwidth_constraint(
    per_player_be_kbps: Iterable[float],
    fi_kbps: float,
    budget: BandwidthBudget,
) -> bool:
    """Constraint 2: the roster's aggregate traffic fits the medium.

    ``per_player_be_kbps`` holds one background-environment fetch-rate
    estimate per co-present player (dist-thresh-derived for Coterie,
    every-interval whole-BE for Furion-style systems); ``fi_kbps`` is
    the closed-form FI sync bandwidth for the same roster size.
    """
    if fi_kbps < 0:
        raise ValueError("fi_kbps must be non-negative")
    total_kbps = fi_kbps
    for be_kbps in per_player_be_kbps:
        if be_kbps < 0:
            raise ValueError("per-player bandwidth must be non-negative")
        total_kbps += be_kbps
    return total_kbps / 1000.0 <= budget.usable_mbps
