"""Per-leaf-region distance thresholds for the frame cache (§5.3).

A cached far-BE frame may serve a request from a *different* grid point
only if the two viewpoints are close enough that the frames stay similar
(SSIM > 0.9).  "Close enough" depends on the leaf's cutoff radius — far BE
rendered behind a large cutoff tolerates more displacement — so the paper
derives one ``dist_thresh`` per leaf region offline: for K sampled grid
points, binary-search the displacement (starting from 32 m downwards) at
which the far-BE pair keeps SSIM > 0.9, then take the per-leaf minimum.

Full pre-computation over thousands of leaves is render-heavy, so
:class:`DistThreshMap` computes thresholds lazily per leaf on first visit
and memoizes — identical output for every leaf a player actually enters.
The per-leaf computation lives in :func:`leaf_threshold`, a pure function
of (scene, config, leaf key, cutoff, seed, k_samples, eye_height), so the
parallel preprocessing driver can compute the same values eagerly in
worker processes and :meth:`DistThreshMap.preload` them — lazy, eager, and
disk-cached paths all produce bit-identical thresholds because they run
the same function with the same RNG stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from .. import perf
from ..codec.dirty import dirty_row_mask, frame_block_digests
from ..geometry import Rect, Vec2
from ..render.rasterizer import RenderConfig
from ..render.splitter import eye_at, render_far_be
from ..similarity import SSIM_GOOD, prepare_reference, ssim_with, ssim_with_update
from ..world.scene import Scene
from .cutoff import CutoffMap, LeafKey

_SEARCH_START_M = 32.0


def measure_dist_thresh(
    scene: Scene,
    config: RenderConfig,
    point: Vec2,
    cutoff_radius: float,
    rng: np.random.Generator,
    eye_height: float = 1.7,
    threshold: float = SSIM_GOOD,
    resolution_m: float = 0.05,
) -> float:
    """Binary-search the reuse displacement for one grid point.

    Renders the far-BE frame at ``point`` and at candidate displacements in
    a random direction; returns the largest displacement whose pair scores
    above ``threshold``.

    Under ``config.kernels == "vector+reuse"`` the probe sequence shares
    candidate-side SSIM moments: consecutive probes differ only where the
    scene actually moved on screen (the sky half of a far-BE frame is
    pose-invariant), so each probe hashes its block tensor, diffs it
    against the previous probe's, and refreshes gaussian moments only for
    dirty rows.  Scores are bit-identical to the from-scratch path.
    """
    if cutoff_radius < 0:
        raise ValueError("cutoff_radius must be non-negative")
    if resolution_m <= 0:
        raise ValueError("resolution_m must be positive")
    direction = Vec2.from_angle(float(rng.uniform(0.0, 2.0 * math.pi)))
    base = render_far_be(
        scene, eye_at(scene, point, eye_height), config, cutoff_radius
    ).image
    # Every probe compares against the same base frame: share its moments.
    reference = prepare_reference(base)
    reuse = config.reuse_enabled
    probe_state = {"digests": None, "moments": None}

    def similar_at(displacement: float) -> bool:
        moved = scene.bounds.clamp(point + direction * displacement)
        frame = render_far_be(
            scene, eye_at(scene, moved, eye_height), config, cutoff_radius
        ).image
        perf.count("dist_thresh.probes")
        if not reuse:
            return ssim_with(reference, frame) > threshold
        digests = frame_block_digests(frame)
        dirty_rows = None
        if probe_state["digests"] is not None:
            dirty_rows = dirty_row_mask(
                probe_state["digests"] != digests, frame.shape[0]
            )
        score, probe_state["moments"] = ssim_with_update(
            reference,
            frame,
            prev=probe_state["moments"],
            dirty_rows=dirty_rows,
        )
        probe_state["digests"] = digests
        return score > threshold

    # Halve from the 32 m start until a similar displacement is found.
    hi = _SEARCH_START_M
    while hi > resolution_m and not similar_at(hi):
        hi /= 2.0
    if hi <= resolution_m:
        return resolution_m
    # Refine upward between hi (similar) and 2*hi (dissimilar or start).
    lo, top = hi, min(2.0 * hi, _SEARCH_START_M)
    while top - lo > max(resolution_m, 0.1 * lo):
        mid = (lo + top) / 2.0
        if similar_at(mid):
            lo = mid
        else:
            top = mid
    return lo


def dist_thresh_payload(
    key: LeafKey, cutoff: float, k_samples: int, seed: int
) -> Dict[str, object]:
    """The disk-cache payload identifying one leaf's threshold.

    The cutoff is part of the key: a cost-model change that resizes a
    leaf's cutoff must invalidate its persisted threshold.
    """
    return {
        "leaf": [float(v) for v in key],
        "cutoff": float(cutoff),
        "k_samples": int(k_samples),
        "seed": int(seed),
    }


def leaf_threshold(
    scene: Scene,
    config: RenderConfig,
    key: LeafKey,
    cutoff: float,
    seed: int = 0,
    k_samples: int = 2,
    eye_height: float = 1.7,
) -> float:
    """The dist_thresh of one leaf region — pure in its arguments.

    The RNG is seeded from (seed, leaf key) via Python's numeric tuple hash,
    which is independent of PYTHONHASHSEED, so any process computing this
    leaf draws the identical sample points and probe directions.
    """
    with perf.timed("dist_thresh"):
        region = Rect(*key)
        rng = np.random.default_rng(seed ^ hash(key) & 0x7FFFFFFF)
        thresholds: List[float] = []
        for sample_point in region.sample(rng, k_samples):
            clamped = scene.bounds.clamp(sample_point)
            thresholds.append(
                measure_dist_thresh(
                    scene, config, clamped, cutoff, rng, eye_height=eye_height
                )
            )
        return min(thresholds)


@dataclass
class DistThreshMap:
    """Lazily computed per-leaf distance thresholds."""

    scene: Scene
    config: RenderConfig
    cutoff_map: CutoffMap
    k_samples: int = 2
    seed: int = 0
    eye_height: float = 1.7
    _cache: Dict[LeafKey, float] = field(default_factory=dict)
    disk: Optional[object] = None  # PanoramaDiskCache, if persisting

    def __post_init__(self) -> None:
        if self.k_samples < 1:
            raise ValueError("k_samples must be >= 1")

    def _disk_payload(self, key: LeafKey, cutoff: float) -> Dict[str, object]:
        return dist_thresh_payload(key, cutoff, self.k_samples, self.seed)

    def preload(self, mapping: Mapping[LeafKey, float]) -> None:
        """Install eagerly computed thresholds (from the parallel driver)."""
        self._cache.update(mapping)

    def threshold_for(self, point: Vec2) -> float:
        """The dist_thresh of the leaf region containing ``point``."""
        key, cutoff = self.cutoff_map.leaf_for(point)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.disk is not None:
            stored = self.disk.load_value(
                "dist_thresh", self._disk_payload(key, cutoff)
            )
            if stored is not None:
                value = float(stored)
                self._cache[key] = value
                return value
        value = leaf_threshold(
            self.scene,
            self.config,
            key,
            cutoff,
            seed=self.seed,
            k_samples=self.k_samples,
            eye_height=self.eye_height,
        )
        self._cache[key] = value
        if self.disk is not None:
            self.disk.store_value(
                "dist_thresh", self._disk_payload(key, cutoff), value
            )
        return value

    @property
    def computed_leaves(self) -> int:
        return len(self._cache)
