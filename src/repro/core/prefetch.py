"""The far-BE prefetcher (§5.2, Fig. 10).

Each rendering interval the client needs the far-BE frame for the *next*
grid point.  The prefetcher asks the frame cache first; only on a miss is
a request sent to the server.  Because a cached frame serves all grid
points within ``dist_thresh``, a fetched frame covers a whole run of
upcoming positions — which both cuts fetch frequency (the paper's 5.2-8.6x)
and widens the time window available for each fetch, so clients simply
fetch as soon as they start reusing a cached frame rather than
coordinating via TDMA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..geometry import GridPoint, Vec2, WorldGrid
from ..world.scene import Scene
from .cache import CachedFrame, FrameCache
from .cutoff import CutoffMap, LeafKey
from .dist_thresh import DistThreshMap


@dataclass(frozen=True)
class PrefetchDecision:
    """What the prefetcher decided for one rendering interval."""

    grid_point: GridPoint
    position: Vec2
    leaf: LeafKey
    cutoff_radius: float
    near_ids: FrozenSet[int]
    cached: Optional[CachedFrame]  # hit: the frame to reuse
    dist_thresh: float

    @property
    def needs_fetch(self) -> bool:
        return self.cached is None


class Prefetcher:
    """Cache-first far-BE frame acquisition for one client."""

    def __init__(
        self,
        scene: Scene,
        grid: WorldGrid,
        cutoff_map: CutoffMap,
        dist_thresh_map: DistThreshMap,
        cache: FrameCache,
        lookahead_m: float = 0.0,
        near_significance: float = 0.05,
    ) -> None:
        if lookahead_m < 0:
            raise ValueError("lookahead_m must be non-negative")
        if near_significance < 0:
            raise ValueError("near_significance must be non-negative")
        self.scene = scene
        self.grid = grid
        self.cutoff_map = cutoff_map
        self.dist_thresh_map = dist_thresh_map
        self.cache = cache
        self.lookahead_m = lookahead_m
        # Criterion-3 visibility floor: objects smaller than this fraction
        # of the cutoff radius (~2 px at the boundary) are ignored when
        # comparing near-BE sets.
        self.near_significance = near_significance
        self.fetches = 0
        # Congestion throttle (repro.adapt): >= 1.0 multiplier widening
        # the dist-thresh acceptance band so more cached candidates serve
        # in place of fetches.  Exactly 1.0 leaves the clean lookup path
        # untouched (the scale is not even applied).
        self.thresh_scale = 1.0

    def plan(
        self,
        position: Vec2,
        heading: float,
        now_ms: float,
    ) -> PrefetchDecision:
        """Resolve the far-BE frame for the (predicted) next viewpoint.

        ``lookahead_m`` projects the request ahead along the movement
        direction so the transfer completes before arrival (Fig. 10's
        enlarged prefetching window).
        """
        target = position
        if self.lookahead_m > 0:
            target = self.scene.bounds.clamp(
                position + Vec2.from_angle(heading, self.lookahead_m)
            )
        grid_point = self.grid.snap(target)
        snapped = self.grid.to_world(grid_point)
        leaf, cutoff = self.cutoff_map.leaf_for(snapped)
        near_ids = self.scene.near_object_ids(
            snapped, cutoff, min_radius=self.near_significance * cutoff
        )
        dist_thresh = self.dist_thresh_map.threshold_for(snapped)
        if self.thresh_scale != 1.0:
            dist_thresh = dist_thresh * self.thresh_scale
        cached = self.cache.lookup(
            grid_point=grid_point,
            position=snapped,
            leaf=leaf,
            near_ids=near_ids,
            dist_thresh=dist_thresh,
            now_ms=now_ms,
        )
        if cached is None:
            self.fetches += 1
        return PrefetchDecision(
            grid_point=grid_point,
            position=snapped,
            leaf=leaf,
            cutoff_radius=cutoff,
            near_ids=near_ids,
            cached=cached,
            dist_thresh=dist_thresh,
        )

    def plan_speculative(
        self,
        position: Vec2,
        heading: float,
        now_ms: float,
    ) -> PrefetchDecision:
        """Resolve a *forecast* viewpoint without touching lookup stats.

        The speculation path (repro.predict) plans against predicted
        poses that may be wrong; charging those probes to the cache's
        hit/miss counters or the fetch tally would corrupt the metrics
        the real frame loop reports.  Same derivation as :meth:`plan`,
        but the cache is only :meth:`~repro.core.cache.FrameCache.peek`-ed
        and ``fetches`` is left alone.  Predicted positions may fall
        outside the scene, so the target is clamped to its bounds.
        """
        target = self.scene.bounds.clamp(position)
        if self.lookahead_m > 0:
            target = self.scene.bounds.clamp(
                target + Vec2.from_angle(heading, self.lookahead_m)
            )
        grid_point = self.grid.snap(target)
        snapped = self.grid.to_world(grid_point)
        leaf, cutoff = self.cutoff_map.leaf_for(snapped)
        near_ids = self.scene.near_object_ids(
            snapped, cutoff, min_radius=self.near_significance * cutoff
        )
        dist_thresh = self.dist_thresh_map.threshold_for(snapped)
        if self.thresh_scale != 1.0:
            dist_thresh = dist_thresh * self.thresh_scale
        cached = self.cache.peek(
            grid_point=grid_point,
            position=snapped,
            leaf=leaf,
            near_ids=near_ids,
            dist_thresh=dist_thresh,
        )
        return PrefetchDecision(
            grid_point=grid_point,
            position=snapped,
            leaf=leaf,
            cutoff_radius=cutoff,
            near_ids=near_ids,
            cached=cached,
            dist_thresh=dist_thresh,
        )

    def admit(
        self,
        decision: PrefetchDecision,
        payload,
        size_bytes: int,
        now_ms: float,
        origin_player: int = -1,
        speculative: bool = False,
        digest: int = 0,
    ) -> CachedFrame:
        """Insert a server-fetched frame for a previous decision.

        ``speculative`` tags the entry as unconfirmed forecast state and
        ``digest`` stamps its float64 oracle hash; both default to the
        plain (non-speculative) admission the clean path performs.
        """
        frame = CachedFrame(
            grid_point=decision.grid_point,
            position=decision.position,
            leaf=decision.leaf,
            near_ids=decision.near_ids,
            payload=payload,
            size_bytes=size_bytes,
            inserted_ms=now_ms,
            last_used_ms=now_ms,
            origin_player=origin_player,
            speculative=speculative,
            digest=digest,
        )
        self.cache.insert(frame)
        return frame
