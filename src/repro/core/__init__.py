"""Coterie's core contribution: cutoff scheme, frame cache, prefetcher."""

from .cache import FLF, LRU, CachedFrame, CacheStats, FrameCache
from .constraint import (
    FRAME_BUDGET_MS,
    PAPER_FI_BOUND_MS,
    BandwidthBudget,
    RenderBudget,
    measure_fi_budget,
    satisfies_bandwidth_constraint,
    satisfies_constraint,
)
from .cutoff import (
    CutoffMap,
    CutoffSchemeConfig,
    LeafCutoff,
    LeafKey,
    build_cutoff_map,
    exact_max_radius,
    leaf_key,
    max_radius_satisfying,
)
from .dist_thresh import (
    DistThreshMap,
    dist_thresh_payload,
    leaf_threshold,
    measure_dist_thresh,
)
from .merger import (
    compose_display,
    compose_display_into,
    layer_from_decoded,
    switch_discontinuities,
)
from .online import (
    OnlineFrameLoop,
    OnlineRunResult,
    PlayerFrameInput,
    SsimBatchQueue,
)
from .pipeline import (
    PipelineTimings,
    batched_frame_intervals_ms,
    frame_interval_ms,
    frame_intervals_ms,
)
from .prefetch import PrefetchDecision, Prefetcher
from .preprocess import (
    FrameSizeModel,
    OfflineArtifacts,
    PanoramaStore,
    PreprocessOptions,
    StoredFrame,
    calibrate_size_model,
    preprocess_game,
)
from .store import CACHE_SCHEMA_VERSION, PanoramaDiskCache, world_cache_key

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CachedFrame",
    "CacheStats",
    "CutoffMap",
    "CutoffSchemeConfig",
    "DistThreshMap",
    "FLF",
    "FRAME_BUDGET_MS",
    "FrameCache",
    "FrameSizeModel",
    "LRU",
    "LeafCutoff",
    "LeafKey",
    "OfflineArtifacts",
    "OnlineFrameLoop",
    "OnlineRunResult",
    "PAPER_FI_BOUND_MS",
    "PanoramaDiskCache",
    "PanoramaStore",
    "PipelineTimings",
    "PlayerFrameInput",
    "PrefetchDecision",
    "Prefetcher",
    "PreprocessOptions",
    "SsimBatchQueue",
    "BandwidthBudget",
    "RenderBudget",
    "StoredFrame",
    "batched_frame_intervals_ms",
    "build_cutoff_map",
    "calibrate_size_model",
    "compose_display",
    "compose_display_into",
    "dist_thresh_payload",
    "exact_max_radius",
    "frame_interval_ms",
    "frame_intervals_ms",
    "layer_from_decoded",
    "leaf_key",
    "leaf_threshold",
    "max_radius_satisfying",
    "measure_dist_thresh",
    "measure_fi_budget",
    "preprocess_game",
    "satisfies_bandwidth_constraint",
    "satisfies_constraint",
    "switch_discontinuities",
    "world_cache_key",
]
