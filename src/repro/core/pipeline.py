"""The Coterie per-interval client pipeline and its latency law (Eq. 2).

During each rendering interval the client performs four time-critical
tasks concurrently — (1) FI + near-BE rendering, (2) decoding the
prefetched far BE, (3) prefetching/caching, (4) FI synchronization —
followed by merging:

    T_split_render = max(T_render_FI + T_render_nearBE,
                         T_decode_farBE,
                         T_prefetch_next_farBE,
                         T_sync_FI) + T_merge
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class PipelineTimings:
    """Latencies of one interval's tasks, all in milliseconds."""

    render_fi_ms: float
    render_near_be_ms: float
    decode_ms: float
    prefetch_ms: float
    sync_ms: float
    merge_ms: float
    setup_ms: float = 0.0

    def __post_init__(self) -> None:
        values = (
            self.render_fi_ms,
            self.render_near_be_ms,
            self.decode_ms,
            self.prefetch_ms,
            self.sync_ms,
            self.merge_ms,
            self.setup_ms,
        )
        if any(v < 0 for v in values):
            raise ValueError("pipeline latencies must be non-negative")

    @property
    def render_ms(self) -> float:
        """The GPU-serial task: FI and near BE share the render engine."""
        return self.setup_ms + self.render_fi_ms + self.render_near_be_ms

    def split_render_ms(self) -> float:
        """Eq. 2: the concurrent tasks' max, plus merging."""
        return (
            max(self.render_ms, self.decode_ms, self.prefetch_ms, self.sync_ms)
            + self.merge_ms
        )

    def bottleneck(self) -> str:
        """Which task dominated the interval (diagnostics)."""
        tasks = {
            "render": self.render_ms,
            "decode": self.decode_ms,
            "prefetch": self.prefetch_ms,
            "sync": self.sync_ms,
        }
        return max(tasks, key=tasks.get)


def frame_interval_ms(
    timings: PipelineTimings,
    target_interval_ms: float = 1000.0 / 60.0,
    quantize: bool = False,
) -> float:
    """Actual display interval for one pipeline iteration.

    A pipeline faster than the 60 Hz refresh waits for vsync (interval =
    16.7 ms).  A slower one free-runs by default — Android's display path
    latches whichever frame is ready at each refresh, so sustained 22 ms
    pipelines show ~45 FPS (the paper's Multi-Furion 2P numbers), not a
    hard halving; pass ``quantize=True`` for strict beat-multiple vsync.
    """
    if target_interval_ms <= 0:
        raise ValueError("target_interval_ms must be positive")
    total = timings.split_render_ms()
    if not quantize:
        return max(total, target_interval_ms)
    import math

    beats = max(1, math.ceil(total / target_interval_ms - 1e-9))
    return beats * target_interval_ms


def frame_intervals_ms(
    timings_seq: Sequence[PipelineTimings],
    target_interval_ms: float = 1000.0 / 60.0,
    quantize: bool = False,
) -> np.ndarray:
    """:func:`frame_interval_ms` over a batch of per-player timings.

    The batched online loop clamps/quantizes every player's interval in
    one numpy pass; each element is bit-identical to the scalar helper
    (``np.maximum`` and ``np.ceil`` agree exactly with ``max`` and
    ``math.ceil`` on these finite inputs).
    """
    if target_interval_ms <= 0:
        raise ValueError("target_interval_ms must be positive")
    totals = np.fromiter(
        (t.split_render_ms() for t in timings_seq),
        dtype=np.float64,
        count=len(timings_seq),
    )
    if not quantize:
        return np.maximum(totals, target_interval_ms)
    beats = np.maximum(1.0, np.ceil(totals / target_interval_ms - 1e-9))
    return beats * target_interval_ms


def batched_frame_intervals_ms(
    prefetch_ms: np.ndarray,
    *,
    render_ms: float,
    decode_ms: float,
    sync_ms: float,
    merge_ms: float,
    target_interval_ms: float = 1000.0 / 60.0,
    quantize: bool = False,
) -> np.ndarray:
    """Eq. 2 intervals for a batch that varies only in prefetch latency.

    The online loop's device-model latencies are per-session constants;
    only the prefetch term differs per player (zero on a cache hit, a
    link-rate transfer on a fetch).  Folding the constant tasks into one
    scalar ``max`` first and broadcasting over ``prefetch_ms`` gives the
    same floats as building a :class:`PipelineTimings` per player —
    ``max(a, b, c, d)`` returns one of its (finite) inputs regardless of
    grouping.
    """
    if target_interval_ms <= 0:
        raise ValueError("target_interval_ms must be positive")
    base = max(render_ms, decode_ms, sync_ms)
    totals = np.maximum(base, prefetch_ms) + merge_ms
    if not quantize:
        return np.maximum(totals, target_interval_ms)
    beats = np.maximum(1.0, np.ceil(totals / target_interval_ms - 1e-9))
    return beats * target_interval_ms
