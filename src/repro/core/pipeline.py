"""The Coterie per-interval client pipeline and its latency law (Eq. 2).

During each rendering interval the client performs four time-critical
tasks concurrently — (1) FI + near-BE rendering, (2) decoding the
prefetched far BE, (3) prefetching/caching, (4) FI synchronization —
followed by merging:

    T_split_render = max(T_render_FI + T_render_nearBE,
                         T_decode_farBE,
                         T_prefetch_next_farBE,
                         T_sync_FI) + T_merge
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineTimings:
    """Latencies of one interval's tasks, all in milliseconds."""

    render_fi_ms: float
    render_near_be_ms: float
    decode_ms: float
    prefetch_ms: float
    sync_ms: float
    merge_ms: float
    setup_ms: float = 0.0

    def __post_init__(self) -> None:
        values = (
            self.render_fi_ms,
            self.render_near_be_ms,
            self.decode_ms,
            self.prefetch_ms,
            self.sync_ms,
            self.merge_ms,
            self.setup_ms,
        )
        if any(v < 0 for v in values):
            raise ValueError("pipeline latencies must be non-negative")

    @property
    def render_ms(self) -> float:
        """The GPU-serial task: FI and near BE share the render engine."""
        return self.setup_ms + self.render_fi_ms + self.render_near_be_ms

    def split_render_ms(self) -> float:
        """Eq. 2: the concurrent tasks' max, plus merging."""
        return (
            max(self.render_ms, self.decode_ms, self.prefetch_ms, self.sync_ms)
            + self.merge_ms
        )

    def bottleneck(self) -> str:
        """Which task dominated the interval (diagnostics)."""
        tasks = {
            "render": self.render_ms,
            "decode": self.decode_ms,
            "prefetch": self.prefetch_ms,
            "sync": self.sync_ms,
        }
        return max(tasks, key=tasks.get)


def frame_interval_ms(
    timings: PipelineTimings,
    target_interval_ms: float = 1000.0 / 60.0,
    quantize: bool = False,
) -> float:
    """Actual display interval for one pipeline iteration.

    A pipeline faster than the 60 Hz refresh waits for vsync (interval =
    16.7 ms).  A slower one free-runs by default — Android's display path
    latches whichever frame is ready at each refresh, so sustained 22 ms
    pipelines show ~45 FPS (the paper's Multi-Furion 2P numbers), not a
    hard halving; pass ``quantize=True`` for strict beat-multiple vsync.
    """
    if target_interval_ms <= 0:
        raise ValueError("target_interval_ms must be positive")
    total = timings.split_render_ms()
    if not quantize:
        return max(total, target_interval_ms)
    import math

    beats = max(1, math.ceil(total / target_interval_ms - 1e-9))
    return beats * target_interval_ms
