"""The far-BE frame cache (§5.3, Tables 4-6).

Each Coterie client caches the far-BE frames it prefetched.  A lookup for
grid point *k* returns a cached frame as a hit when three criteria hold:

1. the cached frame's grid point is within the leaf's ``dist_thresh`` of
   *k* (similarity, derived offline per leaf region);
2. both points lie in the same quadtree leaf region (different regions may
   use different cutoff radii, which would open a near/far gap);
3. the cached frame's near-BE object set equals the one at *k* (otherwise
   an object could fall in neither the rendered near BE nor the cached far
   BE and go missing from the merged frame).

Of all candidates passing the criteria the *closest* one is returned.
Replacement is LRU (temporal locality) or FLF — furthest location first
(spatial locality); the paper finds both effective because the two
localities coincide in player movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional

import numpy as np

from ..geometry import GridPoint, Vec2
from .cutoff import LeafKey

LRU = "lru"
FLF = "flf"

# Safety pad on squared-distance prefilters: ``np.hypot`` is NOT
# bit-identical to ``math.hypot``, so the vector scan only *prefilters*
# with squared distances (padded to a superset by this factor, far above
# the ~4-ulp rounding of dx*dx + dy*dy) and confirms survivors with the
# exact ``math.hypot`` the scalar loop uses.
_PREFILTER_PAD = 1.0 + 1e-9


@dataclass
class CachedFrame:
    """A cached far-BE frame plus the metadata lookups need."""

    grid_point: GridPoint
    position: Vec2
    leaf: LeafKey
    near_ids: FrozenSet[int]
    payload: Any  # EncodedFrame / rendered Layer / None for emulation
    size_bytes: int
    inserted_ms: float
    last_used_ms: float
    origin_player: int = -1  # who prefetched it (inter-player experiments)
    # Speculation metadata (repro.predict).  A speculative entry was
    # prefetched on a pose forecast and must be validated against the
    # float64 oracle digest before the display path may trust it;
    # ``digest`` carries the oracle hash stamped at admission time.
    speculative: bool = False
    digest: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")


@dataclass
class CacheStats:
    """Lookup / replacement / speculation counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    exact_hits: int = 0
    # Speculation lifecycle (all zero unless prediction is enabled).
    speculative_inserts: int = 0
    speculative_confirms: int = 0
    speculative_discards: int = 0
    speculative_expired: int = 0

    @property
    def lookups(self) -> int:
        """Total similarity lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from cache (0.0 when none ran)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class FrameCache:
    """In-memory far-BE frame cache with similarity lookup.

    ``capacity_bytes`` bounds total payload size (phone memory is limited,
    e.g. 4 GB on Pixel 2); ``policy`` selects the replacement strategy.
    ``exact_only`` restricts lookups to exact grid-point matches (cache
    Versions 1/2 of Table 4).
    """

    def __init__(
        self,
        capacity_bytes: int = 512 * 1024 * 1024,
        policy: str = LRU,
        exact_only: bool = False,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if policy not in (LRU, FLF):
            raise ValueError(f"unknown policy {policy!r}; use 'lru' or 'flf'")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.exact_only = exact_only
        self.stats = CacheStats()
        self._frames: Dict[GridPoint, CachedFrame] = {}
        self._bytes = 0
        # Telemetry hooks (assigned by the owning system when tracing):
        # every lookup / stale-fallback emits an instant on the owner's
        # cache lane.  None (the default) costs one branch per lookup.
        self.tracer = None
        self.owner = -1
        # Vectorized candidate scoring (the batched online path, enabled
        # by the owning system when kernels != "scalar").  The scan index
        # — position arrays plus interned leaf / near-set ids — rebuilds
        # lazily after inserts and evictions; lookups between mutations
        # reuse it.  Results are bit-identical to the scalar loop.
        self.vector_scan = False
        self._index_dirty = True
        self._scan_frames: List[CachedFrame] = []
        self._xs = self._ys = self._leaf_arr = self._near_arr = None
        self._leaf_intern: Dict[LeafKey, int] = {}
        self._near_intern: Dict[FrozenSet[int], int] = {}
        # Resident unconfirmed speculative entries.  Zero on every
        # non-predicting session, which keeps the speculative filters
        # below completely off the clean code paths (bit-identity).
        self._spec_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def frames(self) -> List[CachedFrame]:
        """Snapshot of all resident frames."""
        return list(self._frames.values())

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(
        self,
        grid_point: GridPoint,
        position: Vec2,
        leaf: LeafKey,
        near_ids: FrozenSet[int],
        dist_thresh: float,
        now_ms: float,
    ) -> Optional[CachedFrame]:
        """Find a reusable frame for ``grid_point`` (§5.3 lookup algorithm).

        Records a hit or miss in :attr:`stats`; a hit refreshes the entry's
        LRU timestamp.
        """
        if dist_thresh < 0:
            raise ValueError("dist_thresh must be non-negative")

        exact = self._frames.get(grid_point)
        if exact is not None:
            exact.last_used_ms = now_ms
            self.stats.hits += 1
            self.stats.exact_hits += 1
            self._trace_lookup("exact_hit", now_ms)
            return exact
        if self.exact_only:
            self.stats.misses += 1
            self._trace_lookup("miss", now_ms)
            return None

        if self.vector_scan:
            best = self._scan_vector(position, leaf, near_ids, dist_thresh)
        else:
            best = self._scan_scalar(position, leaf, near_ids, dist_thresh)
        if best is None:
            self.stats.misses += 1
            self._trace_lookup("miss", now_ms)
            return None
        best.last_used_ms = now_ms
        self.stats.hits += 1
        self._trace_lookup("similar_hit", now_ms)
        return best

    def _scan_scalar(
        self,
        position: Vec2,
        leaf: LeafKey,
        near_ids: FrozenSet[int],
        dist_thresh: float,
    ) -> Optional[CachedFrame]:
        """The §5.3 candidate loop (the bit-identity oracle)."""
        best: Optional[CachedFrame] = None
        best_distance = float("inf")
        for frame in self._frames.values():
            distance = frame.position.distance_to(position)
            if distance > dist_thresh:
                continue  # criterion 1
            if frame.leaf != leaf:
                continue  # criterion 2
            if frame.near_ids != near_ids:
                continue  # criterion 3
            if distance < best_distance:
                best = frame
                best_distance = distance
        return best

    def _scan_vector(
        self,
        position: Vec2,
        leaf: LeafKey,
        near_ids: FrozenSet[int],
        dist_thresh: float,
    ) -> Optional[CachedFrame]:
        """Vectorized candidate scoring, bit-identical to the scalar loop.

        Criteria 2/3 compare *interned* integer ids (exact, the same
        ``==`` the scalar loop evaluates); criterion 1 prefilters on a
        padded squared distance and the few survivors are confirmed —
        and ranked, first-wins on strict improvement in insertion order
        — with the scalar loop's exact ``math.hypot`` distance.
        """
        self._ensure_index()
        if not self._scan_frames:
            return None
        leaf_id = self._leaf_intern.get(leaf)
        near_id = self._near_intern.get(near_ids)
        if leaf_id is None or near_id is None:
            return None  # no resident frame can match criteria 2/3
        dx = self._xs - position.x
        dy = self._ys - position.y
        d2 = dx * dx + dy * dy
        mask = (self._leaf_arr == leaf_id) & (self._near_arr == near_id)
        mask &= d2 <= (dist_thresh * dist_thresh) * _PREFILTER_PAD
        best: Optional[CachedFrame] = None
        best_distance = float("inf")
        for index in np.flatnonzero(mask):
            frame = self._scan_frames[index]
            distance = frame.position.distance_to(position)
            if distance > dist_thresh:
                continue  # prefilter false positive
            if distance < best_distance:
                best = frame
                best_distance = distance
        return best

    def _ensure_index(self) -> None:
        """Rebuild the vector-scan index if mutations invalidated it."""
        if not self._index_dirty:
            return
        frames = list(self._frames.values())
        self._scan_frames = frames
        self._xs = np.array([f.position.x for f in frames], dtype=np.float64)
        self._ys = np.array([f.position.y for f in frames], dtype=np.float64)
        leaf_intern = self._leaf_intern
        near_intern = self._near_intern
        self._leaf_arr = np.array(
            [leaf_intern.setdefault(f.leaf, len(leaf_intern)) for f in frames],
            dtype=np.int64,
        )
        self._near_arr = np.array(
            [
                near_intern.setdefault(f.near_ids, len(near_intern))
                for f in frames
            ],
            dtype=np.int64,
        )
        self._index_dirty = False

    def _trace_lookup(self, outcome: str, now_ms: float) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                "cache.lookup", self.owner, "cache", now_ms, cat="cache",
                args={"outcome": outcome, "entries": len(self._frames),
                      "bytes": self._bytes},
            )

    def nearest(
        self, position: Vec2, now_ms: float = 0.0
    ) -> Optional[CachedFrame]:
        """Closest resident frame regardless of the hit criteria.

        The stale-frame fallback: when a prefetch misses its deadline the
        client would rather display the nearest cached far-BE panorama
        than stall the display — frame similarity (§4.6) keeps a nearby
        stale frame perceptually close.  Not counted as a hit or miss and
        does not refresh LRU state; the caller records it as degradation.
        ``now_ms`` only stamps the telemetry instant.

        Unconfirmed speculative entries never serve as stale fallbacks —
        displaying unvalidated speculative state is exactly what the
        rollback discipline forbids — so when any are resident the scan
        restricts itself to confirmed frames.
        """
        if self._spec_count:
            return self._nearest_confirmed(position, now_ms)
        if not self._frames:
            if self.tracer is not None:
                self.tracer.instant(
                    "cache.nearest", self.owner, "cache", now_ms, cat="cache",
                    args={"outcome": "empty", "entries": 0},
                )
            return None
        if self.vector_scan:
            best = self._nearest_vector(position)
        else:
            best = min(
                self._frames.values(),
                key=lambda f: f.position.distance_to(position),
            )
        if self.tracer is not None:
            self.tracer.instant(
                "cache.nearest", self.owner, "cache", now_ms, cat="cache",
                args={"outcome": "stale",
                      "age_ms": round(now_ms - best.inserted_ms, 4),
                      "entries": len(self._frames)},
            )
        return best

    def _nearest_vector(self, position: Vec2) -> Optional[CachedFrame]:
        """Vectorized stale-fallback scan, bit-identical to ``min()``.

        The squared-distance minimum (padded, so exact ties and rounding
        stragglers survive) narrows the field; the winner among survivors
        is picked with the exact ``math.hypot`` distance, first minimal
        in insertion order — exactly what ``min()`` over the scalar key
        returns.
        """
        self._ensure_index()
        if not self._scan_frames:
            return None
        dx = self._xs - position.x
        dy = self._ys - position.y
        d2 = dx * dx + dy * dy
        bound = d2.min() * _PREFILTER_PAD
        best: Optional[CachedFrame] = None
        best_distance = float("inf")
        for index in np.flatnonzero(d2 <= bound):
            frame = self._scan_frames[index]
            distance = frame.position.distance_to(position)
            if distance < best_distance:
                best = frame
                best_distance = distance
        return best

    def _nearest_confirmed(
        self, position: Vec2, now_ms: float
    ) -> Optional[CachedFrame]:
        """Stale-fallback scan over confirmed (non-speculative) frames.

        Only runs while unconfirmed speculative entries are resident, so
        the plain :meth:`nearest` paths (scalar *and* vector — both see
        the same filtered candidate list here, keeping kernel modes in
        lockstep) stay untouched for non-predicting sessions.
        """
        candidates = [f for f in self._frames.values() if not f.speculative]
        if not candidates:
            if self.tracer is not None:
                self.tracer.instant(
                    "cache.nearest", self.owner, "cache", now_ms, cat="cache",
                    args={"outcome": "empty", "entries": len(self._frames)},
                )
            return None
        best = min(candidates, key=lambda f: f.position.distance_to(position))
        if self.tracer is not None:
            self.tracer.instant(
                "cache.nearest", self.owner, "cache", now_ms, cat="cache",
                args={"outcome": "stale",
                      "age_ms": round(now_ms - best.inserted_ms, 4),
                      "entries": len(self._frames)},
            )
        return best

    # ------------------------------------------------------------------
    # Speculation (repro.predict)
    # ------------------------------------------------------------------

    def peek(
        self,
        grid_point: GridPoint,
        position: Vec2,
        leaf: LeafKey,
        near_ids: FrozenSet[int],
        dist_thresh: float,
    ) -> Optional[CachedFrame]:
        """A stats-free, LRU-free :meth:`lookup`.

        Speculative planning (and resync probing) must not skew the hit
        ratio or refresh recency, so this answers the same three-criteria
        question as :meth:`lookup` without recording anything.
        """
        if dist_thresh < 0:
            raise ValueError("dist_thresh must be non-negative")
        exact = self._frames.get(grid_point)
        if exact is not None:
            return exact
        if self.exact_only:
            return None
        return self._scan_scalar(position, leaf, near_ids, dist_thresh)

    def confirm(self, frame: CachedFrame) -> None:
        """Promote a validated speculative entry to a confirmed one."""
        if frame.speculative:
            frame.speculative = False
            self._spec_count -= 1
            self.stats.speculative_confirms += 1

    def discard(self, frame: CachedFrame) -> bool:
        """Drop one entry (rollback of corrupt/mispredicted speculation).

        Returns True when the frame was resident and removed.
        """
        resident = self._frames.get(frame.grid_point)
        if resident is not frame:
            return False
        del self._frames[frame.grid_point]
        self._bytes -= frame.size_bytes
        self._index_dirty = True
        if frame.speculative:
            self._spec_count -= 1
            self.stats.speculative_discards += 1
        return True

    def expire_speculative(self, now_ms: float, ttl_ms: float) -> int:
        """Drop unconfirmed speculative entries older than ``ttl_ms``.

        A speculative frame no lookup ever confirmed was a misprediction;
        letting it linger would waste capacity and (worse) leave
        unvalidated state resident forever.  Returns how many expired.
        """
        if self._spec_count == 0:
            return 0
        stale = [
            f for f in self._frames.values()
            if f.speculative and now_ms - f.inserted_ms > ttl_ms
        ]
        for frame in stale:
            del self._frames[frame.grid_point]
            self._bytes -= frame.size_bytes
            self._spec_count -= 1
            self.stats.speculative_expired += 1
            self._index_dirty = True
        return len(stale)

    def drop_speculative(self) -> int:
        """Discard every unconfirmed speculative entry (resync repair)."""
        if self._spec_count == 0:
            return 0
        doomed = [f for f in self._frames.values() if f.speculative]
        for frame in doomed:
            del self._frames[frame.grid_point]
            self._bytes -= frame.size_bytes
            self._spec_count -= 1
            self.stats.speculative_discards += 1
            self._index_dirty = True
        return len(doomed)

    @property
    def speculative_count(self) -> int:
        """Resident unconfirmed speculative entries."""
        return self._spec_count

    # ------------------------------------------------------------------
    # Insertion and replacement
    # ------------------------------------------------------------------

    def insert(self, frame: CachedFrame) -> None:
        """Insert (or replace) a frame, evicting per policy if needed."""
        if frame.size_bytes > self.capacity_bytes:
            raise ValueError("frame larger than the whole cache")
        existing = self._frames.get(frame.grid_point)
        if existing is not None:
            self._bytes -= existing.size_bytes
            if existing.speculative:
                self._spec_count -= 1
        self._frames[frame.grid_point] = frame
        self._bytes += frame.size_bytes
        if frame.speculative:
            self._spec_count += 1
            self.stats.speculative_inserts += 1
        self._index_dirty = True
        self._evict_if_needed(player_position=frame.position)

    def _evict_if_needed(self, player_position: Vec2) -> None:
        while self._bytes > self.capacity_bytes and self._frames:
            victim = self._pick_victim(player_position)
            del self._frames[victim.grid_point]
            self._bytes -= victim.size_bytes
            if victim.speculative:
                self._spec_count -= 1
            self.stats.evictions += 1
            self._index_dirty = True

    def _pick_victim(self, player_position: Vec2) -> CachedFrame:
        frames = self._frames.values()
        if self.policy == LRU:
            return min(frames, key=lambda f: f.last_used_ms)
        # FLF: evict the frame furthest from the player's current position.
        return max(frames, key=lambda f: f.position.distance_to(player_position))

    def clear(self) -> None:
        """Drop every cached frame (stats are kept)."""
        self._frames.clear()
        self._bytes = 0
        self._spec_count = 0
        self._index_dirty = True
