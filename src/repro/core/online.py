"""The batched online frame loop (decode → cache → SSIM → merge → display).

Coterie's online hot path runs the same per-frame work for every player in
the session.  The scalar path handles one player at a time with float64
frames — it is the bit-identity oracle.  The batched path stacks all
players' work into single numpy passes over tiled float32 frame layouts:

* **decode** — all cache-missing far-BE frames of a tick decode in one
  :meth:`repro.codec.FrameCodec.decode_batch` call (stacked dequantize,
  einsum IDCT, strided block join);
* **cache** — candidate scoring runs over the vectorized scan index
  (``FrameCache.vector_scan``);
* **merge** — display frames compose into arena-backed float32 buffers
  (:func:`repro.core.merger.compose_display_into`);
* **SSIM** — all players' displayed-vs-reference scores compute in one
  :func:`repro.similarity.ssim_pairs` pass;
* **intervals** — the frame-interval clamp vectorizes across players
  (:func:`repro.core.pipeline.frame_intervals_ms`).

Scratch memory comes from a :class:`repro.perf.FrameArena`, reset once per
tick, so the steady state makes **zero** per-frame large allocations.
Both paths fold displayed bytes, SSIM values, and intervals into one
sha256 digest — equal digests prove the batched path is bit-identical.

:class:`SsimBatchQueue` carries the same batching into the discrete-event
systems (:mod:`repro.systems.coterie`): SSIM jobs whose results only feed
*metrics* (never simulated timing) are queued during the simulation and
computed in stacked passes at flush points.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from .. import perf
from ..codec.h264like import EncodedFrame, FrameCodec
from ..geometry import GridPoint, Vec2
from ..render.rasterizer import Layer
from ..similarity import ssim, ssim_pairs
from .cache import CachedFrame, FrameCache
from .merger import compose_display, compose_display_into
from .pipeline import (
    PipelineTimings,
    batched_frame_intervals_ms,
    frame_interval_ms,
)

REFRESH_INTERVAL_MS = 1000.0 / 60.0


@dataclass(frozen=True)
class PlayerFrameInput:
    """One player's inputs for one tick of the online loop."""

    grid_point: GridPoint
    position: Vec2
    leaf: Any  # LeafKey
    near_ids: FrozenSet[int]
    dist_thresh: float
    encoded: EncodedFrame  # far-BE payload, decoded on a cache miss
    wire_bytes: int
    near_layer: Layer
    fi_layer: Optional[Layer]
    reference: np.ndarray  # all-local frame for displayed-SSIM ticks


@dataclass
class OnlineRunResult:
    """One mode's pass over the tick schedule."""

    batched: bool
    frames: int
    fetches: int
    cache_hits: int
    ssim_values: List[float]
    interval_sum_ms: float
    digest: str

    def metrics(self) -> Dict[str, Any]:
        """Cross-mode comparable session metrics (must be bit-identical)."""
        return {
            "frames": self.frames,
            "fetches": self.fetches,
            "cache_hits": self.cache_hits,
            "ssim_values": list(self.ssim_values),
            "interval_sum_ms": self.interval_sum_ms,
            "digest": self.digest,
        }


@dataclass
class OnlineFrameLoop:
    """Replayable multi-player online frame loop.

    ``ticks[t][p]`` is player ``p``'s :class:`PlayerFrameInput` at tick
    ``t``.  :meth:`run` replays the schedule through either the scalar
    oracle or the batched kernels; the digest and metrics of both runs
    must match exactly.  Device-model latencies are fixed constants — the
    engine measures *host* throughput, the latencies only exercise the
    interval math identically in both modes.
    """

    ticks: Sequence[Sequence[PlayerFrameInput]]
    cache_capacity_bytes: int = 512 * 1024 * 1024
    ssim_stride: int = 1
    ssim_batch_target: int = 64
    link_mbps: float = 600.0
    fi_ms: float = 3.0
    near_ms: float = 4.0
    decode_ms: float = 3.7
    sync_ms: float = 1.0
    merge_ms: float = 1.0
    setup_ms: float = 0.5
    codec: FrameCodec = field(default_factory=FrameCodec)

    def __post_init__(self) -> None:
        if self.ssim_stride < 1:
            raise ValueError("ssim_stride must be >= 1")
        if self.link_mbps <= 0:
            raise ValueError("link_mbps must be positive")

    # ------------------------------------------------------------------

    def _prefetch_ms(self, wire_bytes: int) -> float:
        return wire_bytes * 8.0 / (self.link_mbps * 1000.0)

    def _timings(self, fetched: bool, wire_bytes: int) -> PipelineTimings:
        return PipelineTimings(
            render_fi_ms=self.fi_ms,
            render_near_be_ms=self.near_ms,
            decode_ms=self.decode_ms,
            prefetch_ms=self._prefetch_ms(wire_bytes) if fetched else 0.0,
            sync_ms=self.sync_ms,
            merge_ms=self.merge_ms,
            setup_ms=self.setup_ms,
        )

    def _lookup(
        self, cache: FrameCache, inp: PlayerFrameInput, now_ms: float
    ) -> Optional[CachedFrame]:
        return cache.lookup(
            grid_point=inp.grid_point,
            position=inp.position,
            leaf=inp.leaf,
            near_ids=inp.near_ids,
            dist_thresh=inp.dist_thresh,
            now_ms=now_ms,
        )

    def _admit(
        self,
        cache: FrameCache,
        inp: PlayerFrameInput,
        decoded: np.ndarray,
        now_ms: float,
    ) -> CachedFrame:
        frame = CachedFrame(
            grid_point=inp.grid_point,
            position=inp.position,
            leaf=inp.leaf,
            near_ids=inp.near_ids,
            payload=decoded,
            size_bytes=inp.wire_bytes,
            inserted_ms=now_ms,
            last_used_ms=now_ms,
        )
        cache.insert(frame)
        return frame

    # ------------------------------------------------------------------

    def run(self, batched: bool = False, arena=None) -> OnlineRunResult:
        """Replay the schedule; ``batched`` selects the kernel path.

        ``arena`` (a :class:`repro.perf.FrameArena`) backs the batched
        path's scratch; it is reset once per tick.  The scalar path
        ignores it.
        """
        n_players = len(self.ticks[0]) if self.ticks else 0
        caches = [
            FrameCache(capacity_bytes=self.cache_capacity_bytes)
            for _ in range(n_players)
        ]
        queue = None
        if batched:
            for cache in caches:
                cache.vector_scan = True
            # Displayed-SSIM only feeds metrics, never control flow, so the
            # batched path defers it: jobs accumulate across ticks and
            # compute in stacks far wider than one tick's player count.
            # The queue gets its own arena — its buffers (displayed
            # frames included) must survive until the flush, not just
            # until the next per-tick reset.
            # The flush is driven at tick boundaries below (never from
            # inside submit): displayed frames composed into the queue
            # arena earlier in a tick must not be recycled while later
            # players of the same tick still queue jobs against theirs.
            queue = SsimBatchQueue(
                arena=None if arena is None else type(arena)(),
                batch_target=self.ssim_batch_target + len(self.ticks[0]),
            )
        digest = hashlib.sha256()
        ssim_values: List[float] = []
        frames = 0
        interval_sum = 0.0
        for tick_index, tick in enumerate(self.ticks):
            now_ms = tick_index * REFRESH_INTERVAL_MS
            ssim_tick = tick_index % self.ssim_stride == 0
            if batched:
                intervals = self._run_tick_batched(
                    caches, tick, now_ms, ssim_tick, arena, queue, digest,
                    ssim_values,
                )
            else:
                intervals = self._run_tick_scalar(
                    caches, tick, now_ms, ssim_tick, digest, ssim_values
                )
            digest.update(intervals.tobytes())
            interval_sum += float(intervals.sum())
            frames += len(tick)
        if queue is not None:
            queue.flush()
        # SSIM values fold in after the ticks — submission order, which
        # both paths share — so deferral cannot reorder the digest.
        for value in ssim_values:
            digest.update(np.float64(value).tobytes())
        hits = sum(cache.stats.hits for cache in caches)
        fetches = sum(cache.stats.misses for cache in caches)
        return OnlineRunResult(
            batched=batched,
            frames=frames,
            fetches=fetches,
            cache_hits=hits,
            ssim_values=ssim_values,
            interval_sum_ms=interval_sum,
            digest=digest.hexdigest(),
        )

    # -- scalar oracle -------------------------------------------------

    def _run_tick_scalar(
        self, caches, tick, now_ms, ssim_tick, digest, ssim_values
    ) -> np.ndarray:
        displayed_frames = []
        timings = []
        for player, inp in enumerate(tick):
            cached = self._lookup(caches[player], inp, now_ms)
            fetched = cached is None
            if fetched:
                decoded = self.codec.decode(inp.encoded)
                cached = self._admit(caches[player], inp, decoded, now_ms)
            displayed = compose_display(
                cached.payload, inp.near_layer, inp.fi_layer
            )
            digest.update(displayed.tobytes())
            displayed_frames.append(displayed)
            timings.append(self._timings(fetched, inp.wire_bytes))
        if ssim_tick:
            for player, inp in enumerate(tick):
                value = ssim(displayed_frames[player], inp.reference)
                ssim_values.append(float(value))
        return np.fromiter(
            (frame_interval_ms(t) for t in timings),
            dtype=np.float64,
            count=len(timings),
        )

    # -- batched kernels -----------------------------------------------

    def _run_tick_batched(
        self, caches, tick, now_ms, ssim_tick, arena, queue, digest, ssim_values
    ) -> np.ndarray:
        if arena is not None:
            arena.reset()

        def take_f32(shape):
            # Displayed frames come from the *queue's* arena: a pending
            # SSIM job may hold one until the next flush, which is the
            # point at which that arena's buffers recycle.
            if queue.arena is not None:
                return queue.arena.take(shape, np.float32)
            return np.empty(shape, dtype=np.float32)

        lookups = [
            self._lookup(caches[player], inp, now_ms)
            for player, inp in enumerate(tick)
        ]
        missing = [p for p, cached in enumerate(lookups) if cached is None]
        if missing:
            decoded_stack = self.codec.decode_batch(
                [tick[p].encoded for p in missing], arena=arena
            )
            for p, decoded in zip(missing, decoded_stack):
                lookups[p] = self._admit(caches[p], tick[p], decoded, now_ms)
        perf.count("online.batch_ticks")
        perf.count("online.players_per_batch", len(tick))
        far_frames = [cached.payload for cached in lookups]
        shapes = {far.shape for far in far_frames}
        if len(shapes) == 1:
            # Uniform frame shape: compose every player into one
            # contiguous (N, H, W) stack and fold its bytes into the
            # digest in a single update — sha256 streams, so hashing the
            # stack equals hashing each row in player order.
            stack = take_f32((len(tick), *shapes.pop()))
            displayed_frames = [
                compose_display_into(
                    stack[player], far_frames[player],
                    inp.near_layer, inp.fi_layer,
                )
                for player, inp in enumerate(tick)
            ]
            digest.update(stack.tobytes())
        else:
            displayed_frames = []
            for player, inp in enumerate(tick):
                displayed = compose_display_into(
                    take_f32(far_frames[player].shape), far_frames[player],
                    inp.near_layer, inp.fi_layer,
                )
                digest.update(displayed.tobytes())
                displayed_frames.append(displayed)
        if ssim_tick:
            for player, inp in enumerate(tick):
                queue.submit(
                    displayed_frames[player], inp.reference, ssim_values.append
                )
        if len(queue) >= self.ssim_batch_target:
            queue.flush()
        prefetch = np.zeros(len(tick), dtype=np.float64)
        for p in missing:
            prefetch[p] = self._prefetch_ms(tick[p].wire_bytes)
        return batched_frame_intervals_ms(
            prefetch,
            render_ms=self.setup_ms + self.fi_ms + self.near_ms,
            decode_ms=self.decode_ms,
            sync_ms=self.sync_ms,
            merge_ms=self.merge_ms,
        )


class SsimBatchQueue:
    """Deferred SSIM jobs, computed in stacked tiled-kernel flushes.

    The discrete-event clients record SSIM-derived *metrics* (far-BE
    switch discontinuity, displayed-frame quality) whose values never
    influence simulated timing — so the pixel math is deferred: ``submit``
    queues ``(a, b, callback)`` and flushes compute all queued scores via
    :func:`repro.similarity.ssim_pairs`, grouped by frame shape, then
    dispatch callbacks in submission order.  Scores are bit-identical to
    inline ``ssim(a, b)`` calls; submitted arrays must not be mutated
    before the flush.
    """

    def __init__(self, arena=None, batch_target: int = 16) -> None:
        if batch_target < 1:
            raise ValueError("batch_target must be >= 1")
        self.arena = arena
        self.batch_target = batch_target
        self.jobs_total = 0
        self.flushes = 0
        # Set by the owning system to observe flushes (tracer instants).
        self.on_flush: Optional[Callable[[int], None]] = None
        self._jobs: List[
            Tuple[np.ndarray, np.ndarray, Callable[[float], None]]
        ] = []

    def __len__(self) -> int:
        return len(self._jobs)

    def submit(
        self,
        a: np.ndarray,
        b: np.ndarray,
        callback: Callable[[float], None],
    ) -> None:
        """Queue one SSIM job; flushes when the batch target fills."""
        self._jobs.append((a, b, callback))
        self.jobs_total += 1
        if len(self._jobs) >= self.batch_target:
            self.flush()

    def flush(self) -> None:
        """Compute all queued scores and dispatch their callbacks."""
        if not self._jobs:
            return
        jobs, self._jobs = self._jobs, []
        self.flushes += 1
        if self.arena is not None:
            self.arena.reset()
        groups: Dict[tuple, List[int]] = {}
        for index, (a, _b, _cb) in enumerate(jobs):
            groups.setdefault(a.shape, []).append(index)
        scores: List[float] = [0.0] * len(jobs)
        for indices in groups.values():
            values = ssim_pairs(
                [(jobs[i][0], jobs[i][1]) for i in indices], arena=self.arena
            )
            for i, value in zip(indices, values):
                scores[i] = float(value)
        perf.count("online.ssim_jobs", len(jobs))
        perf.count("online.ssim_flushes")
        if self.on_flush is not None:
            self.on_flush(len(jobs))
        for (_a, _b, callback), value in zip(jobs, scores):
            callback(value)
