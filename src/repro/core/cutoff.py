"""The adaptive cutoff scheme (§4.3, Table 3, Figs. 6-8).

Customizing a cutoff radius per grid point is infeasible (hundreds of
millions of points); a single global radius wastes budget where the world
is sparse.  The scheme recursively quadtree-partitions the 2D world,
sampling K random locations per region and computing each location's
*maximal* radius satisfying Constraint 1; if the K radii are similar the
region becomes a leaf carrying their minimum, otherwise it splits into four
quadrants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from .. import perf
from ..geometry import QuadTree, QuadTreeStats, Rect, Vec2
from ..render.timing import RenderCostModel
from ..world.scene import Scene
from .constraint import RenderBudget

# A region key that identifies a leaf stably across processes/runs.
LeafKey = Tuple[float, float, float, float]


def leaf_key(region: Rect) -> LeafKey:
    """Stable, hashable identifier of a leaf region."""
    return (region.x_min, region.y_min, region.x_max, region.y_max)


@dataclass(frozen=True)
class LeafCutoff:
    """Payload of a quadtree leaf: its region's cutoff radius."""

    cutoff_radius: float
    sampled_radii: Tuple[float, ...]


@dataclass
class CutoffSchemeConfig:
    """Tunables of the adaptive scheme."""

    k_samples: int = 10  # paper's experimentally chosen K (§4.3, Fig. 6)
    agreement_ratio: float = 2.0  # max/min radius ratio considered "similar"
    agreement_abs: float = 0.5  # ... or max-min below this many metres
    max_depth: int = 6
    min_region_m: float = 2.0  # stop splitting below this edge length
    max_radius: float = 180.0  # search ceiling (matches Fig. 7's axis)
    radius_tolerance: float = 0.25  # bisection resolution in metres

    def __post_init__(self) -> None:
        if self.k_samples < 1:
            raise ValueError("k_samples must be >= 1")
        if self.agreement_ratio < 1.0:
            raise ValueError("agreement_ratio must be >= 1")
        if self.max_depth < 0 or self.min_region_m <= 0:
            raise ValueError("invalid depth/region limits")
        if self.max_radius <= 0 or self.radius_tolerance <= 0:
            raise ValueError("invalid radius search parameters")


@dataclass
class CutoffMap:
    """The scheme's output: a quadtree of leaf regions with cutoff radii."""

    tree: QuadTree
    config: CutoffSchemeConfig
    samples_evaluated: int

    def cutoff_for(self, point: Vec2) -> float:
        """Cutoff radius of the leaf region containing ``point``."""
        leaf = self.tree.leaf_for(point)
        assert leaf.payload is not None
        return leaf.payload.cutoff_radius

    def leaf_for(self, point: Vec2) -> Tuple[LeafKey, float]:
        """(stable leaf key, cutoff radius) for cache criterion 2 (§5.3)."""
        leaf = self.tree.leaf_for(point)
        assert leaf.payload is not None
        return leaf_key(leaf.region), leaf.payload.cutoff_radius

    def leaf_radii(self) -> List[float]:
        """All leaf cutoff radii (Fig. 7's CDF input)."""
        return [leaf.payload.cutoff_radius for leaf in self.tree.leaves()]

    def stats(self) -> QuadTreeStats:
        """Quadtree shape summary (Table 3's columns)."""
        return self.tree.stats()

    def modeled_processing_hours(
        self, per_sample_s: float = 0.55, per_area_s: float = 0.0025
    ) -> float:
        """Offline processing-time model for Table 3's "Proc. Time".

        Each sampled location's cutoff calculation is an on-device
        render-time measurement sweep (~``per_sample_s`` each); panoramic
        coverage preparation scales with world area.
        """
        if per_sample_s < 0 or per_area_s < 0:
            raise ValueError("time model coefficients must be non-negative")
        area = self.tree.root.region.area
        return (self.samples_evaluated * per_sample_s + area * per_area_s) / 3600.0


def max_radius_satisfying(
    model: RenderCostModel,
    scene: Scene,
    viewpoint: Vec2,
    budget: RenderBudget,
    max_radius: float,
    tolerance: float = 0.25,
) -> float:
    """Largest cutoff radius at ``viewpoint`` that meets Constraint 1.

    ``near_be_ms`` is monotone non-decreasing in the radius, so bisection
    applies.  Returns 0.0 when even an empty near BE would not fit (cannot
    happen with a sane budget) and ``max_radius`` when the whole
    neighbourhood fits.
    """
    if max_radius <= 0 or tolerance <= 0:
        raise ValueError("max_radius and tolerance must be positive")
    limit = budget.near_be_budget_ms
    if model.near_be_ms(scene, viewpoint, max_radius) < limit:
        return max_radius
    lo, hi = 0.0, max_radius
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if model.near_be_ms(scene, viewpoint, mid) < limit:
            lo = mid
        else:
            hi = mid
    return lo


def exact_max_radius(
    scene: Scene,
    model: RenderCostModel,
    viewpoint: Vec2,
    budget: RenderBudget,
    max_radius: float,
) -> float:
    """Exact maximal radius satisfying Constraint 1, in O(N log N).

    The near-BE cost only changes when the radius crosses an object's
    distance, and each object's LOD weight depends on its own distance, not
    the radius — so sorting objects by distance and prefix-summing their
    weighted costs yields the exact supremum radius in one pass.  Orders of
    magnitude faster than bisection with repeated spatial queries, and used
    by :func:`build_cutoff_map`.
    """
    if max_radius <= 0:
        raise ValueError("max_radius must be positive")
    positions, triangles = scene.position_triangle_arrays()
    if len(triangles) == 0:
        return max_radius
    deltas = positions - np.array([viewpoint.x, viewpoint.y])
    distances = np.hypot(deltas[:, 0], deltas[:, 1])
    order = np.argsort(distances)
    sorted_d = distances[order]
    lod = np.maximum(
        model.device.lod_floor,
        1.0 / (1.0 + (sorted_d / model.device.lod_distance) ** 2),
    )
    cost_ms = np.cumsum(triangles[order] * lod) / model.device.triangle_throughput
    limit = budget.near_be_budget_ms
    # First object whose inclusion busts the budget.
    index = int(np.searchsorted(cost_ms, limit, side="left"))
    if index >= len(sorted_d):
        return max_radius
    supremum = float(sorted_d[index])
    if supremum >= max_radius:
        return max_radius
    # Just inside the busting object's distance.
    return max(0.0, supremum - 1e-6)


def build_cutoff_map(
    scene: Scene,
    model: RenderCostModel,
    budget: RenderBudget,
    world: Optional[Rect] = None,
    config: Optional[CutoffSchemeConfig] = None,
    seed: int = 0,
    reachable: Optional[Callable[[Vec2], bool]] = None,
) -> CutoffMap:
    """Run the adaptive cutoff scheme over a game world.

    ``reachable`` biases sampling toward locations players can occupy
    (e.g. the track band); if a region has no reachable samples it falls
    back to uniform samples — its radius is then conservative but the
    region is never visited anyway.
    """
    world = world if world is not None else scene.bounds
    config = config if config is not None else CutoffSchemeConfig()
    rng = np.random.default_rng(seed)
    counter = {"samples": 0}

    def sample_points(region: Rect) -> List[Vec2]:
        points: List[Vec2] = []
        if reachable is not None:
            attempts = 0
            while len(points) < config.k_samples and attempts < config.k_samples * 8:
                candidate = region.sample(rng, 1)[0]
                attempts += 1
                if reachable(candidate):
                    points.append(candidate)
        while len(points) < config.k_samples:
            points.append(region.sample(rng, 1)[0])
        return points

    def radii_similar(radii: List[float]) -> bool:
        lo, hi = min(radii), max(radii)
        if hi - lo <= config.agreement_abs:
            return True
        if lo <= 0:
            return False
        return hi / lo <= config.agreement_ratio

    def policy(region: Rect, depth: int) -> Tuple[bool, LeafCutoff]:
        radii = [
            exact_max_radius(scene, model, p, budget, config.max_radius)
            for p in sample_points(region)
        ]
        counter["samples"] += len(radii)
        payload = LeafCutoff(
            cutoff_radius=min(radii), sampled_radii=tuple(radii)
        )
        too_small = min(region.width, region.height) / 2.0 < config.min_region_m
        stop = radii_similar(radii) or too_small
        return stop, payload

    with perf.timed("cutoff"):
        tree = QuadTree.build(world, policy, max_depth=config.max_depth)
    perf.count("cutoff.samples", counter["samples"])
    return CutoffMap(tree=tree, config=config, samples_evaluated=counter["samples"])
